//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The build environment is fully offline, so the real crates-io
//! `criterion` cannot be fetched; this crate implements exactly the API
//! subset the `segstack-bench` benches use (`Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) with honest
//! wall-clock measurement: per-sample medians over a warm-up plus a
//! measurement window. Reported numbers are median / mean / p95 of the
//! per-iteration time.
//!
//! Passing `--test` (which `cargo test` does for `harness = false`
//! targets) runs every benchmark closure once and skips measurement, so
//! benches stay cheap smoke tests under the test runner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, e.g. `fib18/segmented`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Measurement configuration and entry point (the `criterion` namesake).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            test_mode,
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the closure before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies command-line overrides (only `--test` is recognised).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup { criterion: self, name }
    }
}

/// A named set of benchmarks sharing the group's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark that needs no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    /// Runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            test_mode: self.criterion.test_mode,
            warm_up: self.criterion.warm_up_time,
            measurement: self.criterion.measurement_time,
            sample_size: self.criterion.sample_size,
        };
        f(&mut b);
        if b.test_mode {
            println!("  {}/{id}: ok (test mode)", self.name);
            return;
        }
        b.samples.sort_unstable();
        let n = b.samples.len();
        if n == 0 {
            println!("  {}/{id}: no samples", self.name);
            return;
        }
        let median = b.samples[n / 2];
        let mean = b.samples.iter().sum::<u128>() / n as u128;
        let p95 = b.samples[(n * 95 / 100).min(n - 1)];
        println!(
            "  {}/{id}: median {} mean {} p95 {} ({} samples)",
            self.name,
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(p95),
            n
        );
    }

    /// Ends the group (kept for API compatibility; output is streamed).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    samples: Vec<u128>,
    test_mode: bool,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling until either the
    /// sample count or the measurement window is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            let _ = black_box(routine());
            return;
        }
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            let _ = black_box(routine());
        }
        let measure_end = Instant::now() + self.measurement;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let _ = black_box(routine());
            self.samples.push(start.elapsed().as_nanos());
            if Instant::now() >= measure_end {
                break;
            }
        }
    }
}

/// An identity function that defeats constant-propagation of benchmark
/// results (best-effort without `core::hint::black_box`'s guarantees).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group the way criterion does:
///
/// ```ignore
/// criterion_group! { name = benches; config = quick(); targets = bench }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        c.test_mode = false;
        let mut g = c.benchmark_group("g");
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs >= 5);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("fib", "seg").to_string(), "fib/seg");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
