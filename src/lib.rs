//! # segstack
//!
//! A from-scratch reproduction of **Representing Control in the Presence of
//! First-Class Continuations** (Robert Hieb, R. Kent Dybvig, Carl
//! Bruggeman — PLDI 1990): the segmented-stack representation of control
//! that gives O(1) continuation capture, bounded-cost reinstatement, and
//! graceful stack overflow/underflow recovery, as adopted by Chez Scheme.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`core`] (`segstack-core`) — the paper's segmented control stack:
//!   stack segments and records, code-stream frame-size words, the stack
//!   walker, capture/reinstate with splitting, overflow as implicit
//!   capture.
//! * [`baselines`] (`segstack-baselines`) — the five strategies the paper
//!   compares against: heap, naive copy, stack cache (Bartley–Jensen), and
//!   Clinger et al.'s hybrid and incremental stack/heap models.
//! * [`scheme`] (`segstack-scheme`) — a complete Scheme system (reader,
//!   compiler, bytecode VM) parameterised over any control-stack strategy.
//! * [`control`] (`segstack-control`) — coroutines, generators, engines and
//!   `amb`, built from `call/cc`.
//! * [`serve`] (`segstack-serve`) — a shared-nothing multi-worker evaluation
//!   runtime: engine-quantum preemption, per-job fuel and deadlines, fair
//!   round-robin scheduling over a bounded admission queue.
//!
//! ## Quick start
//!
//! ```
//! use segstack::scheme::Engine;
//! use segstack::baselines::Strategy;
//!
//! // A Scheme engine running on the paper's segmented stack.
//! let mut engine = Engine::with_strategy(Strategy::Segmented)?;
//! let v = engine.eval("(+ 1 (call/cc (lambda (k) (k 41))))")?;
//! assert_eq!(v.to_string(), "42");
//!
//! // Capture is O(1): no slots are copied.
//! engine.reset_metrics();
//! engine.eval("(define (deep n) (if (= n 0) (call/cc (lambda (k) k)) (deep (- n 1))))
//!              (deep 100)")?;
//! assert!(engine.metrics().captures >= 1);
//! # Ok::<(), segstack::scheme::SchemeError>(())
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every experiment.

#![forbid(unsafe_code)]

pub use segstack_baselines as baselines;
pub use segstack_control as control;
pub use segstack_core as core;
pub use segstack_scheme as scheme;
pub use segstack_serve as serve;
