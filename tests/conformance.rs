//! R3RS-flavoured conformance checks, ported from the report's examples.
//!
//! Each case is an (expression, expected-printed-value) pair evaluated on
//! the segmented stack; a closing sweep re-runs the whole battery on every
//! other strategy to pin down any divergence to a specific case.

use segstack::baselines::Strategy;
use segstack::scheme::Engine;

/// The battery: expression and expected `write`-style result.
const CASES: &[(&str, &str)] = &[
    // 4.1 primitive expression types
    ("(quote a)", "a"),
    ("(quote #(a b c))", "#(a b c)"),
    ("(quote (+ 1 2))", "(+ 1 2)"),
    ("'\"abc\"", "\"abc\""),
    ("'145932", "145932"),
    ("(if (> 3 2) 'yes 'no)", "yes"),
    ("(if (> 2 3) 'yes 'no)", "no"),
    ("(if (> 3 2) (- 3 2) (+ 3 2))", "1"),
    // 4.2 derived expression types
    ("(cond ((> 3 2) 'greater) ((< 3 2) 'less))", "greater"),
    ("(cond ((> 3 3) 'greater) ((< 3 3) 'less) (else 'equal))", "equal"),
    ("(case (* 2 3) ((2 3 5 7) 'prime) ((1 4 6 8 9) 'composite))", "composite"),
    ("(case (car '(c d)) ((a) 'a) ((b) 'b) (else 'other))", "other"),
    ("(and (= 2 2) (> 2 1))", "#t"),
    ("(and (= 2 2) (< 2 1))", "#f"),
    ("(and 1 2 'c '(f g))", "(f g)"),
    ("(or (= 2 2) (> 2 1))", "#t"),
    ("(or #f #f #f)", "#f"),
    ("(or (memq 'b '(a b c)) (/ 3 0))", "(b c)"),
    ("(let ((x 2) (y 3)) (* x y))", "6"),
    ("(let ((x 2) (y 3)) (let ((x 7) (z (+ x y))) (* z x)))", "35"),
    ("(let ((x 2) (y 3)) (let* ((x 7) (z (+ x y))) (* z x)))", "70"),
    (
        "(letrec ((even? (lambda (n) (if (zero? n) #t (odd? (- n 1)))))
                  (odd? (lambda (n) (if (zero? n) #f (even? (- n 1))))))
           (even? 88))",
        "#t",
    ),
    (
        "(define x 0)
         (begin (set! x 5) (+ x 1))",
        "6",
    ),
    (
        "(do ((vec (make-vector 5)) (i 0 (+ i 1))) ((= i 5) vec) (vector-set! vec i i))",
        "#(0 1 2 3 4)",
    ),
    (
        "(let loop ((numbers '(3 -2 1 6 -5)) (nonneg '()) (neg '()))
           (cond ((null? numbers) (list nonneg neg))
                 ((>= (car numbers) 0)
                  (loop (cdr numbers) (cons (car numbers) nonneg) neg))
                 (else (loop (cdr numbers) nonneg (cons (car numbers) neg)))))",
        "((6 1 3) (-5 -2))",
    ),
    // 6.1 booleans
    ("(not #t)", "#f"),
    ("(not 3)", "#f"),
    ("(not (list 3))", "#f"),
    ("(not '())", "#f"),
    // 6.2 equivalence predicates
    ("(eqv? 'a 'a)", "#t"),
    ("(eqv? 'a 'b)", "#f"),
    ("(eqv? 2 2)", "#t"),
    ("(eqv? '() '())", "#t"),
    ("(eqv? 100000000 100000000)", "#t"),
    ("(eqv? (cons 1 2) (cons 1 2))", "#f"),
    ("(eqv? (lambda () 1) (lambda () 2))", "#f"),
    ("(eqv? #f 'nil)", "#f"),
    ("(let ((p (lambda (x) x))) (eqv? p p))", "#t"),
    ("(eq? 'a 'a)", "#t"),
    ("(eq? (list 'a) (list 'a))", "#f"),
    ("(eq? '() '())", "#t"),
    ("(eq? car car)", "#t"),
    ("(let ((x '(a))) (eq? x x))", "#t"),
    ("(equal? 'a 'a)", "#t"),
    ("(equal? '(a) '(a))", "#t"),
    ("(equal? '(a (b) c) '(a (b) c))", "#t"),
    ("(equal? \"abc\" \"abc\")", "#t"),
    ("(equal? 2 2)", "#t"),
    ("(equal? (make-vector 5 'a) (make-vector 5 'a))", "#t"),
    // 6.3 pairs and lists
    ("(define x (list 'a 'b 'c)) (define y x) (list? y)", "#t"),
    ("(define x (list 'a 'b 'c)) (set-cdr! x 4) x", "(a . 4)"),
    ("(pair? '(a . b))", "#t"),
    ("(pair? '(a b c))", "#t"),
    ("(pair? '())", "#f"),
    ("(pair? '#(a b))", "#f"),
    ("(cons 'a '())", "(a)"),
    ("(cons '(a) '(b c d))", "((a) b c d)"),
    ("(cons \"a\" '(b c))", "(\"a\" b c)"),
    ("(cons 'a 3)", "(a . 3)"),
    ("(cons '(a b) 'c)", "((a b) . c)"),
    ("(car '(a b c))", "a"),
    ("(car '((a) b c d))", "(a)"),
    ("(car '(1 . 2))", "1"),
    ("(cdr '((a) b c d))", "(b c d)"),
    ("(cdr '(1 . 2))", "2"),
    ("(list 'a (+ 3 4) 'c)", "(a 7 c)"),
    ("(list)", "()"),
    ("(length '(a b c))", "3"),
    ("(length '(a (b) (c d e)))", "3"),
    ("(length '())", "0"),
    ("(append '(x) '(y))", "(x y)"),
    ("(append '(a) '(b c d))", "(a b c d)"),
    ("(append '(a (b)) '((c)))", "(a (b) (c))"),
    ("(append '(a b) '(c . d))", "(a b c . d)"),
    ("(append '() 'a)", "a"),
    ("(reverse '(a b c))", "(c b a)"),
    ("(reverse '(a (b c) d (e (f))))", "((e (f)) d (b c) a)"),
    ("(list-ref '(a b c d) 2)", "c"),
    ("(memq 'a '(a b c))", "(a b c)"),
    ("(memq 'b '(a b c))", "(b c)"),
    ("(memq 'a '(b c d))", "#f"),
    ("(memq (list 'a) '(b (a) c))", "#f"),
    ("(member (list 'a) '(b (a) c))", "((a) c)"),
    ("(memv 101 '(100 101 102))", "(101 102)"),
    ("(assq 'a '((a 1) (b 2) (c 3)))", "(a 1)"),
    ("(assq 'b '((a 1) (b 2) (c 3)))", "(b 2)"),
    ("(assq 'd '((a 1) (b 2) (c 3)))", "#f"),
    ("(assq (list 'a) '(((a)) ((b)) ((c))))", "#f"),
    ("(assoc (list 'a) '(((a)) ((b)) ((c))))", "((a))"),
    ("(assv 5 '((2 3) (5 7) (11 13)))", "(5 7)"),
    // 6.4 symbols
    ("(symbol? 'foo)", "#t"),
    ("(symbol? (car '(a b)))", "#t"),
    ("(symbol? \"bar\")", "#f"),
    ("(symbol? 'nil)", "#t"),
    ("(symbol? '())", "#f"),
    ("(symbol? #f)", "#f"),
    ("(symbol->string 'flying-fish)", "\"flying-fish\""),
    ("(eq? 'mISSISSIppi 'mISSISSIppi)", "#t"),
    ("(eq? 'bitBlt (string->symbol \"bitBlt\"))", "#t"),
    ("(eq? 'JollyWog (string->symbol (symbol->string 'JollyWog)))", "#t"),
    // 6.5 numbers
    ("(max 3 4)", "4"),
    ("(max 3.9 4)", "4.0"),
    ("(+ 3 4)", "7"),
    ("(+ 3)", "3"),
    ("(+)", "0"),
    ("(* 4)", "4"),
    ("(*)", "1"),
    ("(- 3 4)", "-1"),
    ("(- 3 4 5)", "-6"),
    ("(- 3)", "-3"),
    ("(abs -7)", "7"),
    ("(modulo 13 4)", "1"),
    ("(remainder 13 4)", "1"),
    ("(modulo -13 4)", "3"),
    ("(remainder -13 4)", "-1"),
    ("(modulo 13 -4)", "-3"),
    ("(remainder 13 -4)", "1"),
    ("(modulo -13 -4)", "-1"),
    ("(remainder -13 -4)", "-1"),
    ("(gcd 32 -36)", "4"),
    ("(gcd)", "0"),
    ("(number->string 100)", "\"100\""),
    ("(string->number \"100\")", "100"),
    ("(string->number \"1e2\")", "100.0"),
    // 6.6 characters
    ("(char<? #\\A #\\B)", "#t"),
    ("(char<? #\\a #\\b)", "#t"),
    ("(char<? #\\0 #\\9)", "#t"),
    // 6.7 strings
    ("(string-length \"abc\")", "3"),
    ("(string-length \"\")", "0"),
    ("(string-ref \"abc\" 0)", "#\\a"),
    ("(substring \"abcdef\" 2 4)", "\"cd\""),
    ("(string-append \"abc\" \"def\")", "\"abcdef\""),
    // 6.8 vectors
    ("(vector 'a 'b 'c)", "#(a b c)"),
    ("(vector-ref '#(1 1 2 3 5 8 13 21) 5)", "8"),
    (
        "(define vec (vector 0 '(2 2 2 2) \"Anna\"))
         (vector-set! vec 1 '(\"Sue\" \"Sue\"))
         vec",
        "#(0 (\"Sue\" \"Sue\") \"Anna\")",
    ),
    ("(vector->list '#(dah dah didah))", "(dah dah didah)"),
    ("(list->vector '(dididit dah))", "#(dididit dah)"),
    // 6.9 control features
    ("(procedure? car)", "#t"),
    ("(procedure? 'car)", "#f"),
    ("(procedure? (lambda (x) (* x x)))", "#t"),
    ("(procedure? '(lambda (x) (* x x)))", "#f"),
    ("(apply + (list 3 4))", "7"),
    (
        "(define compose (lambda (f g) (lambda args (f (apply g args)))))
         ((compose sqrt *) 12 75)",
        "30",
    ),
    ("(map cadr '((a b) (d e) (g h)))", "(b e h)"),
    ("(map (lambda (n) (expt n n)) '(1 2 3 4 5))", "(1 4 27 256 3125)"),
    ("(map + '(1 2 3) '(4 5 6))", "(5 7 9)"),
    (
        "(define v (make-vector 5))
         (for-each (lambda (i) (vector-set! v i (* i i))) '(0 1 2 3 4))
         v",
        "#(0 1 4 9 16)",
    ),
    ("(force (delay (+ 1 2)))", "3"),
    ("(let ((p (delay (+ 1 2)))) (list (force p) (force p)))", "(3 3)"),
    ("(call-with-current-continuation procedure?)", "#t"),
    (
        "(call-with-current-continuation
           (lambda (exit)
             (for-each (lambda (x) (if (negative? x) (exit x) #f))
                       '(54 0 37 -3 245 19))
             #t))",
        "-3",
    ),
    (
        "(define list-length
           (lambda (obj)
             (call-with-current-continuation
               (lambda (return)
                 (letrec ((r (lambda (obj)
                               (cond ((null? obj) 0)
                                     ((pair? obj) (+ (r (cdr obj)) 1))
                                     (else (return #f))))))
                   (r obj))))))
         (list (list-length '(1 2 3 4)) (list-length '(a b . c)))",
        "(4 #f)",
    ),
];

fn engine(strategy: Strategy) -> Engine {
    Engine::builder().strategy(strategy).max_steps(100_000_000).build().unwrap()
}

#[test]
fn r3rs_battery_on_the_segmented_stack() {
    let mut failures = Vec::new();
    for (src, expected) in CASES {
        let mut e = engine(Strategy::Segmented);
        match e.eval_to_string(src) {
            Ok(got) if got == *expected => {}
            Ok(got) => failures.push(format!("{src}\n  expected {expected}, got {got}")),
            Err(err) => failures.push(format!("{src}\n  error: {err}")),
        }
    }
    assert!(failures.is_empty(), "{} failures:\n{}", failures.len(), failures.join("\n"));
}

#[test]
fn r3rs_battery_on_every_other_strategy() {
    for s in
        [Strategy::Heap, Strategy::Copy, Strategy::Cache, Strategy::Hybrid, Strategy::Incremental]
    {
        let mut failures = Vec::new();
        for (src, expected) in CASES {
            let mut e = engine(s);
            match e.eval_to_string(src) {
                Ok(got) if got == *expected => {}
                Ok(got) => failures.push(format!("{src} => {got} (want {expected})")),
                Err(err) => failures.push(format!("{src} => error {err}")),
            }
        }
        assert!(failures.is_empty(), "{s}: {} failures:\n{}", failures.len(), failures.join("\n"));
    }
}

/// `negative?` appears in a report example; make sure the battery's own
/// helpers exist.
#[test]
fn battery_helpers_exist() {
    let mut e = engine(Strategy::Segmented);
    assert_eq!(e.eval_to_string("(negative? -1)").unwrap(), "#t");
    assert_eq!(e.eval_to_string("(zero? 0)").unwrap(), "#t");
}

/// Extensions beyond R3RS that this implementation provides, batched the
/// same way: macros, multiple values, string ports, runtime eval, promises
/// and the case-insensitive comparators.
const EXTENSION_CASES: &[(&str, &str)] = &[
    // syntax-rules
    (
        "(define-syntax my-if2
           (syntax-rules (then else)
             ((_ c then t else e) (if c t e))))
         (my-if2 (> 2 1) then 'a else 'b)",
        "a",
    ),
    (
        "(define-syntax for
           (syntax-rules (in)
             ((_ x in lst body ...) (for-each (lambda (x) body ...) lst))))
         (define acc '())
         (for v in '(1 2 3) (set! acc (cons (* v v) acc)))
         (reverse acc)",
        "(1 4 9)",
    ),
    // values
    ("(call-with-values (lambda () (values 4 5)) (lambda (a b) b))", "5"),
    ("(call-with-values * -)", "-1"),
    // string ports
    (
        "(let ((p (open-output-string)))
           (write '(hi \"there\") p)
           (get-output-string p))",
        "\"(hi \\\"there\\\")\"",
    ),
    // runtime eval + read
    ("(eval (read-from-string \"(let ((x 3)) (* x x))\"))", "9"),
    ("(define source '(define evaluated 99)) (eval source) evaluated", "99"),
    // promises memoize
    (
        "(define count 0)
         (define p (delay (begin (set! count (+ count 1)) count)))
         (list (force p) (force p) count)",
        "(1 1 1)",
    ),
    // case-insensitive comparisons
    ("(char-ci=? #\\A #\\a)", "#t"),
    ("(string-ci=? \"Hello\" \"hELLO\")", "#t"),
    ("(string-ci=? \"abc\" \"abd\")", "#f"),
    ("(boolean=? #t #t)", "#t"),
    ("(boolean=? #t #f)", "#f"),
    // stack introspection
    ("(list? (stack-frames))", "#t"),
    // sort (prelude)
    ("(sort '(5 2 8 1 9 3) <)", "(1 2 3 5 8 9)"),
    // quasiquote depth
    ("`(1 ,@(map (lambda (x) (* x 10)) '(1 2)) 3)", "(1 10 20 3)"),
    // apply + values interplay
    ("(apply call-with-values (list (lambda () (values 1 2)) +))", "3"),
];

#[test]
fn extension_battery_on_every_strategy() {
    for s in Strategy::ALL {
        let mut failures = Vec::new();
        for (src, expected) in EXTENSION_CASES {
            let mut e = engine(s);
            match e.eval_to_string(src) {
                Ok(got) if got == *expected => {}
                Ok(got) => failures.push(format!("{src} => {got} (want {expected})")),
                Err(err) => failures.push(format!("{src} => error {err}")),
            }
        }
        assert!(failures.is_empty(), "{s}: {} failures:\n{}", failures.len(), failures.join("\n"));
    }
}
