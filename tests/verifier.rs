//! The bytecode verifier run over everything this repository compiles: the
//! prelude, the control libraries, and the full workload corpus. The
//! verified invariants are exactly what stack walking (Figure 4), timer
//! re-entry and bounded frames rely on.

use segstack::baselines::Strategy;
use segstack::control::Control;
use segstack::scheme::{CheckPolicy, Engine};

#[test]
fn every_compiled_chunk_verifies() {
    let mut kit = Control::new(Strategy::Segmented).unwrap();
    // Compile the whole corpus through the same engine.
    for src in [
        include_str!("programs/ctak.scm"),
        include_str!("programs/sort.scm"),
        include_str!("programs/deriv.scm"),
        include_str!("programs/queens.scm"),
        include_str!("programs/generators.scm"),
        include_str!("programs/boyer.scm"),
        include_str!("programs/meta.scm"),
    ] {
        kit.eval(src).unwrap();
    }
    let errors = kit.engine().verify_code();
    assert!(
        errors.is_empty(),
        "{} violations:\n{}",
        errors.len(),
        errors.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    assert!(kit.engine().chunk_count() > 150, "corpus compiled into many chunks");
}

#[test]
fn verifier_holds_under_every_check_policy() {
    for policy in [CheckPolicy::Always, CheckPolicy::Elide, CheckPolicy::Never] {
        let mut e = Engine::builder().check_policy(policy).build().unwrap();
        e.eval(
            "(define (f a . rest) (apply + a rest))
             (define-syntax sq (syntax-rules () ((_ x) (* x x))))
             (map (lambda (v) (sq (f v 1))) '(1 2 3))",
        )
        .unwrap();
        let errors = e.verify_code();
        assert!(errors.is_empty(), "{policy:?}: {errors:?}");
    }
}

#[test]
fn verifier_catches_corruption() {
    use segstack::scheme::{Check, Chunk, CodeStore, Instr};
    let store = CodeStore::new();
    store.add(Chunk {
        instrs: vec![
            Instr::Call { d: 3, nargs: 1, check: Check::Yes }, // no FrameSize words
            Instr::Jump(99),                                   // out of range
            Instr::Const(0),                                   // empty pool
            Instr::LocalSet(50),                               // beyond frame size
        ],
        consts: vec![],
        nparams: 0,
        variadic: false,
        name: "bad".into(),
        frame_slots: 6,
        ics: vec![],
    });
    let errors = store.verify();
    assert!(errors.len() >= 5, "found only {errors:?}");
    let text = errors.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n");
    assert!(text.contains("not preceded by a frame-size word"), "{text}");
    assert!(text.contains("return point lacks"), "{text}");
    assert!(text.contains("jump target"), "{text}");
    assert!(text.contains("outside pool"), "{text}");
    assert!(text.contains("beyond recorded frame size"), "{text}");
}
