//! Continuation torture tests, run on every control-stack strategy.
//!
//! These exercise exactly the behaviors that distinguish the paper's
//! segmented stack from simpler schemes: escapes, multi-shot re-entry,
//! continuations outliving their capture context, capture at depth,
//! reinstatement across overflow boundaries, and the tail-capture rule.

use segstack::baselines::Strategy;
use segstack::core::Config;
use segstack::scheme::{CheckPolicy, Engine};

fn engine(strategy: Strategy) -> Engine {
    Engine::builder().strategy(strategy).max_steps(200_000_000).build().unwrap()
}

#[track_caller]
fn check_all(src: &str, expected: &str) {
    for s in Strategy::ALL {
        let mut e = engine(s);
        let got = e.eval_to_string(src).unwrap_or_else(|err| panic!("{s}: {err}\n{src}"));
        assert_eq!(got, expected, "strategy {s}, program:\n{src}");
    }
}

#[test]
fn escaping_continuations() {
    check_all("(call/cc (lambda (k) 42))", "42");
    check_all("(call/cc (lambda (k) (k 42)))", "42");
    check_all("(+ 1 (call/cc (lambda (k) (k 1) 99)))", "2");
    check_all("(* 3 (call/cc (lambda (k) (+ 1 (k 5)))))", "15");
    // Escape from deep inside a recursion.
    check_all(
        "(define (find-first pred lst fail)
           (cond ((null? lst) (fail 'not-found))
                 ((pred (car lst)) (car lst))
                 (else (find-first pred (cdr lst) fail))))
         (call/cc (lambda (k) (find-first even? '(1 3 5 7 9) k)))",
        "not-found",
    );
}

#[test]
fn continuation_as_first_class_value() {
    check_all(
        "(define k-cell #f)
         (define (capture) (call/cc (lambda (k) (set! k-cell k) 0)))
         (define count 0)
         (define r (capture))
         (set! count (+ count 1))
         (if (< r 3) (k-cell (+ r 1)) (list r count))",
        "(3 4)",
    );
}

#[test]
fn multi_shot_reentry_from_saved_continuation() {
    check_all(
        "(define k #f)
         (define log '())
         (define v (* 2 (call/cc (lambda (c) (set! k c) 1))))
         (set! log (cons v log))
         (if (< v 8) (k (+ v 1)) (reverse log))",
        "(2 6 14)",
    );
}

#[test]
fn ctak_on_every_strategy() {
    check_all(include_str!("programs/ctak.scm"), "5");
}

#[test]
fn capture_deep_then_unwind_and_reenter() {
    // Capture at depth 2000, unwind fully, re-enter three times.
    check_all(
        "(define k #f)
         (define pass 0)
         (define (deep n) (if (= n 0) (call/cc (lambda (c) (set! k c) 1)) (+ 1 (deep (- n 1)))))
         (define first (deep 2000))
         (set! pass (+ pass 1))
         (if (< pass 3) (k 0) (list first pass))",
        "(2000 3)",
    );
}

#[test]
fn continuations_escape_iteration() {
    check_all(
        "(define (product lst)
           (call/cc (lambda (exit)
             (let loop ((l lst) (acc 1))
               (cond ((null? l) acc)
                     ((= (car l) 0) (exit 0))
                     (else (loop (cdr l) (* acc (car l)))))))))
         (list (product '(1 2 3)) (product '(1 0 3)))",
        "(6 0)",
    );
}

#[test]
fn reentry_replays_only_the_post_capture_suffix() {
    check_all(
        "(define trace '())
         (define (note x) (set! trace (cons x trace)))
         (define k1 #f)
         (define n 0)
         (note 'a)
         (call/cc (lambda (k) (set! k1 k)))
         (note 'b)
         (set! n (+ n 1))
         (if (< n 3) (k1 #f) (reverse trace))",
        "(a b b b)",
    );
}

#[test]
fn the_paper_looper_runs_in_constant_segments() {
    // The exact §4 example: tail-position call/cc in a tail-recursive loop.
    for s in Strategy::ALL {
        let mut e = engine(s);
        e.eval(
            "(define (looper n)
               (if (= n 0) 'done (looper (- n 1) (call/cc (lambda (k) k)))))
             (define (looper2 n . ignored)
               (if (= n 0) 'done (looper2 (- n 1) (call/cc (lambda (k) k)))))
             (looper2 50000)",
        )
        .unwrap();
        let st = e.stack_stats();
        assert!(
            st.chain_records <= 3,
            "{s}: looper grew the continuation chain to {}",
            st.chain_records
        );
    }
}

#[test]
fn segmented_looper_allocates_no_extra_segments() {
    // The paper's exact looper shape: call/cc in tail position, recursion
    // in the receiver's tail position (§4).
    let mut e = engine(Strategy::Segmented);
    e.eval("(define (looper n) (if (= n 0) 'done (call/cc (lambda (k) (looper (- n 1))))))")
        .unwrap();
    e.reset_metrics();
    e.eval("(looper 100000)").unwrap();
    let m = e.metrics();
    assert_eq!(m.captures, 100_000);
    assert_eq!(m.segments_allocated, 0, "the tail-capture rule avoids all segment growth");
    assert_eq!(m.overflows, 0);
    assert_eq!(m.slots_copied, 0, "capture never copies");
}

#[test]
fn deep_recursion_across_overflow_with_reentry() {
    // Capture below several segment boundaries, then re-enter after a full
    // unwind: reinstatement must chain through split segments.
    let cfg = Config::builder().segment_slots(512).frame_bound(64).copy_bound(64).build().unwrap();
    for s in Strategy::ALL {
        let mut e = Engine::builder()
            .strategy(s)
            .config(cfg.clone())
            .max_steps(200_000_000)
            .build()
            .unwrap();
        let got = e
            .eval_to_string(
                "(define k #f)
                 (define reentered #f)
                 (define (deep n)
                   (if (= n 0)
                       (call/cc (lambda (c) (set! k c) 1))
                       (+ 1 (deep (- n 1)))))
                 (define v (deep 300))
                 (if reentered v (begin (set! reentered #t) (k 1)))",
            )
            .unwrap();
        assert_eq!(got, "301", "{s}");
    }
}

#[test]
fn dynamic_wind_reroots_on_jumps_every_strategy() {
    check_all(
        "(define trace '())
         (define (note x) (set! trace (cons x trace)))
         (define k #f)
         (define pass 0)
         (dynamic-wind
           (lambda () (note 'enter))
           (lambda ()
             (call/cc (lambda (c) (set! k c)))
             (note 'body))
           (lambda () (note 'leave)))
         (set! pass (+ pass 1))
         (if (< pass 3) (k #f) (reverse trace))",
        "(enter body leave enter body leave enter body leave)",
    );
}

#[test]
fn exit_continuation_halts_any_depth() {
    check_all(
        "(define (spin k n) (if (= n 0) (k 'halted) (spin k (- n 1))))
         (call/cc (lambda (k) (spin k 10000)))",
        "halted",
    );
}

#[test]
fn continuation_identity_semantics() {
    check_all("(call/cc procedure?)", "#t");
    check_all(
        "(define k (call/cc (lambda (c) c)))
         (if (procedure? k) (k 42) k)",
        "42",
    );
}

#[test]
fn check_policies_do_not_change_semantics() {
    for policy in [CheckPolicy::Always, CheckPolicy::Elide] {
        let mut e = Engine::builder().check_policy(policy).max_steps(200_000_000).build().unwrap();
        let v = e.eval_to_string(include_str!("programs/ctak.scm")).unwrap();
        assert_eq!(v, "5", "{policy:?}");
        let v = e
            .eval_to_string("(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1))))) (sum 100000)")
            .unwrap();
        assert_eq!(v, "5000050000", "{policy:?}");
    }
}

#[test]
fn strategies_report_expected_capture_costs() {
    // The quantitative shape of the paper (E5): repeated capture of a deep
    // stack copies the whole stack every time in the copy model, and a
    // bounded amount in the segmented model.
    let program = "(define ks '())
                   (define (grab i)
                     (if (= i 0)
                         0
                         (begin
                           (call/cc (lambda (k) (set! ks (cons k ks))))
                           (grab (- i 1)))))
                   (define (deep n thunk)
                     (if (= n 0) (thunk) (+ 1 (deep (- n 1) thunk))))
                   (deep 300 (lambda () (grab 20)))";
    let copied = |s: Strategy| {
        let mut e = engine(s);
        e.eval("1").unwrap();
        e.reset_metrics();
        e.eval(program).unwrap();
        e.metrics().slots_copied
    };
    let seg = copied(Strategy::Segmented);
    let copy = copied(Strategy::Copy);
    assert!(
        copy > 20 * 300 && copy > 3 * seg,
        "copy model pays O(depth) per capture (copy={copy}, segmented={seg})"
    );
}
