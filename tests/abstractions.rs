//! Cross-crate integration: the control abstractions (coroutines,
//! generators, engines, amb) running over every control-stack strategy,
//! including stressed configurations.

use segstack::baselines::Strategy;
use segstack::control::Control;
use segstack::core::Config;
use segstack::scheme::CheckPolicy;

fn stressed() -> Config {
    Config::builder().segment_slots(384).frame_bound(48).copy_bound(24).build().unwrap()
}

#[test]
fn same_fringe_everywhere() {
    for s in Strategy::ALL {
        let mut kit = Control::new(s).unwrap();
        assert!(kit.same_fringe("'((a (b)) c)", "'(a (b (c)))").unwrap(), "{s}");
        assert!(!kit.same_fringe("'((a (b)) c)", "'(a (x (c)))").unwrap(), "{s}");
    }
}

#[test]
fn generators_everywhere() {
    for s in Strategy::ALL {
        let mut kit = Control::new(s).unwrap();
        let v = kit
            .eval("(generator-take (generator-map (lambda (x) (* 2 x)) (integers-from 5)) 3)")
            .unwrap();
        assert_eq!(v.to_string(), "(10 12 14)", "{s}");
    }
}

#[test]
fn engines_everywhere() {
    for s in Strategy::ALL {
        let mut kit = Control::new(s).unwrap();
        let order = kit.round_robin_countdowns(3, 400, 75).unwrap();
        assert_eq!(order, vec![0, 1, 2], "{s}");
    }
}

#[test]
fn queens_everywhere() {
    for s in Strategy::ALL {
        let mut kit = Control::new(s).unwrap();
        assert_eq!(kit.queens_count(6).unwrap(), 4, "{s}");
    }
}

#[test]
fn abstractions_survive_stressed_configuration() {
    for s in Strategy::ALL {
        let mut kit = Control::with_config(s, stressed(), CheckPolicy::Elide).unwrap();
        assert!(kit.same_fringe("'(1 (2 (3 (4))))", "'((((1) 2) 3) 4)").unwrap(), "{s}");
        assert_eq!(kit.queens_count(5).unwrap(), 10, "{s}");
        assert_eq!(kit.coroutine_pingpong(200).unwrap(), 200, "{s}");
        assert_eq!(kit.ctak(9, 6, 3).unwrap(), 6, "{s}");
    }
}

#[test]
fn engines_interleave_under_stress() {
    for s in [Strategy::Segmented, Strategy::Heap] {
        let mut kit = Control::with_config(s, stressed(), CheckPolicy::Always).unwrap();
        // Shortest job finishes first even when submitted last.
        let v = kit
            .eval(
                "(round-robin
                   (list (make-engine (lambda () (let loop ((i 900)) (if (= i 0) 'a (loop (- i 1))))))
                         (make-engine (lambda () (let loop ((i 500)) (if (= i 0) 'b (loop (- i 1))))))
                         (make-engine (lambda () (let loop ((i 100)) (if (= i 0) 'c (loop (- i 1)))))))
                   60)",
            )
            .unwrap();
        assert_eq!(v.to_string(), "(c b a)", "{s}");
    }
}

#[test]
fn amb_backtracking_is_deterministic_across_strategies() {
    let mut reference: Option<String> = None;
    for s in Strategy::ALL {
        let mut kit = Control::new(s).unwrap();
        let v = kit
            .eval(
                "(amb-collect (lambda ()
                   (let ((x (choose '(1 2 3 4))) (y (choose '(1 2 3 4))))
                     (amb-require (< x y))
                     (amb-require (even? (+ x y)))
                     (list x y))))",
            )
            .unwrap()
            .to_string();
        match &reference {
            None => reference = Some(v),
            Some(r) => assert_eq!(&v, r, "{s}"),
        }
    }
    assert_eq!(reference.unwrap(), "((1 3) (2 4))");
}

#[test]
fn coroutine_metrics_show_capture_costs_differ() {
    // Same workload, different cost shapes: the segmented kit captures
    // without copying; the naive copy kit copies stack images per transfer.
    let run = |s: Strategy| {
        let mut kit = Control::new(s).unwrap();
        kit.engine().reset_metrics();
        kit.coroutine_pingpong(500).unwrap();
        let m = kit.metrics();
        (m.captures, m.slots_copied)
    };
    let (seg_caps, seg_copied) = run(Strategy::Segmented);
    let (copy_caps, copy_copied) = run(Strategy::Copy);
    assert_eq!(seg_caps, copy_caps, "identical workloads");
    assert!(
        copy_copied > seg_copied,
        "copy model should copy more (copy={copy_copied}, segmented={seg_copied})"
    );
}

#[test]
fn threads_and_amb_compose() {
    // Two threads each solving a different queens instance via amb: the
    // amb machinery (global failure continuation) is swapped cooperatively.
    // NOTE: amb state is global, so each thread must run its search without
    // yielding mid-search; the scheduler still interleaves between
    // searches via thread-yield.
    let mut kit = Control::new(Strategy::Segmented).unwrap();
    let results = kit
        .eval(
            "(begin
               (spawn (lambda () (let ((n (queens-count 5))) (thread-yield) n)))
               (spawn (lambda () (let ((n (queens-count 4))) (thread-yield) n)))
               (run-threads 1000000))",
        )
        .unwrap();
    assert_eq!(results.to_string(), "((1 . 10) (2 . 2))");
}

#[test]
fn dynamic_wind_tracks_engine_preemption_boundaries() {
    // dynamic-wind inside an engine: every preemption jumps *out* of the
    // wind extent (the scheduler runs outside it) and every resumption
    // jumps back *in*, so the rerooting call/cc fires the after/before
    // thunks once per quantum — the R5RS-correct composition of winders
    // with engines.
    let mut kit = Control::new(Strategy::Segmented).unwrap();
    let v = kit
        .eval(
            "(define enters 0)
             (define leaves 0)
             (define result
               (engine-run-to-completion
                 (make-engine
                   (lambda ()
                     (dynamic-wind
                       (lambda () (set! enters (+ enters 1)))
                       (lambda () (let loop ((i 2000)) (if (= i 0) 'body-done (loop (- i 1)))))
                       (lambda () (set! leaves (+ leaves 1))))))
                 150))
             (list (car result)
                   (> (cdr result) 3)
                   (= enters leaves)
                   (= enters (cdr result)))",
        )
        .unwrap();
    // One enter/leave pair per quantum: expiry leaves the extent, the next
    // quantum re-enters it.
    assert_eq!(v.to_string(), "(body-done #t #t #t)");
}

#[test]
fn generators_inside_threads() {
    let mut kit = Control::new(Strategy::Segmented).unwrap();
    let v = kit
        .eval(
            "(begin
               (spawn (lambda () (generator-take (integers-from 0) 5)))
               (spawn (lambda () (generator-take (integers-from 100) 3)))
               (map cdr (run-threads 400)))",
        )
        .unwrap();
    assert_eq!(v.to_string(), "((0 1 2 3 4) (100 101 102))");
}

#[test]
fn eval_file_loads_programs() {
    use segstack::scheme::Engine;
    let mut e = Engine::builder().max_steps(200_000_000).build().unwrap();
    let v = e.eval_file(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/programs/ctak.scm")).unwrap();
    assert_eq!(v.to_string(), "5");
    let err = e.eval_file("/nonexistent/path.scm").unwrap_err().to_string();
    assert!(err.contains("cannot load"), "{err}");
}
