//! Language-level integration tests: R3RS-style behavior of the Scheme
//! system on the segmented stack.

use segstack::scheme::Engine;

fn eval(src: &str) -> String {
    let mut e = Engine::builder().max_steps(100_000_000).build().unwrap();
    e.eval_to_string(src).unwrap_or_else(|err| panic!("{src}: {err}"))
}

#[track_caller]
fn check(src: &str, expected: &str) {
    assert_eq!(eval(src), expected, "program: {src}");
}

#[test]
fn self_evaluating() {
    check("42", "42");
    check("-3", "-3");
    check("2.5", "2.5");
    check("#t", "#t");
    check("#\\a", "#\\a");
    check("\"str\"", "\"str\"");
}

#[test]
fn quoting() {
    check("'a", "a");
    check("'(1 2 3)", "(1 2 3)");
    check("''a", "(quote a)");
    check("'#(1 2)", "#(1 2)");
    check("'()", "()");
}

#[test]
fn conditionals() {
    check("(if #t 'yes 'no)", "yes");
    check("(if #f 'yes 'no)", "no");
    check("(if 0 'yes 'no)", "yes");
    check("(if '() 'yes 'no)", "yes");
    check("(cond (#f 1) (#t 2) (else 3))", "2");
    check("(cond (#f 1) (else 3))", "3");
    check("(cond ((assv 'b '((a 1) (b 2))) => cadr) (else 'none))", "2");
    check("(cond (42))", "42");
    check("(case (* 2 3) ((2 3 5 7) 'prime) ((1 4 6 8 9) 'composite))", "composite");
    check("(case 'z ((a) 1) (else 'other))", "other");
    check("(and 1 2 3)", "3");
    check("(and 1 #f 3)", "#f");
    check("(and)", "#t");
    check("(or #f #f 3)", "3");
    check("(or #f)", "#f");
    check("(or)", "#f");
    check("(when (> 3 2) 'big)", "big");
    check("(unless (> 3 2) 'small)", "#<unspecified>");
}

#[test]
fn binding_forms() {
    check("(let ((x 2) (y 3)) (* x y))", "6");
    check("(let ((x 2)) (let ((x 7) (y x)) (* x y)))", "14");
    check("(let* ((x 2) (y (* x 3))) (* x y))", "12");
    check(
        "(letrec ((even? (lambda (n) (if (= n 0) #t (odd? (- n 1)))))
                    (odd? (lambda (n) (if (= n 0) #f (even? (- n 1))))))
           (even? 88))",
        "#t",
    );
    check("(let loop ((n 5) (acc 1)) (if (= n 0) acc (loop (- n 1) (* acc n))))", "120");
    check(
        "(do ((v (make-vector 5)) (i 0 (+ i 1))) ((= i 5) v) (vector-set! v i i))",
        "#(0 1 2 3 4)",
    );
}

#[test]
fn lambdas_and_closures() {
    check("((lambda (x) (+ x x)) 4)", "8");
    check("((lambda (x . rest) (list x rest)) 1 2 3)", "(1 (2 3))");
    check("((lambda args args) 3 4 5 6)", "(3 4 5 6)");
    check(
        "(define compose (lambda (f g) (lambda (x) (f (g x)))))
           ((compose car cdr) '(a b c))",
        "b",
    );
    check(
        "(define (curry2 f) (lambda (a) (lambda (b) (f a b))))
           (((curry2 +) 1) 2)",
        "3",
    );
}

#[test]
fn assignment_and_state() {
    check("(define x 1) (set! x 11) x", "11");
    check(
        "(define (make-cell v)
             (cons (lambda () v) (lambda (nv) (set! v nv))))
           (define c (make-cell 1))
           ((cdr c) 99)
           ((car c))",
        "99",
    );
}

#[test]
fn numeric_tower() {
    check("(+ 1 2.5)", "3.5");
    check("(* 1000000 1000000)", "1000000000000");
    check("(quotient 17 5)", "3");
    check("(modulo -7 3)", "2");
    check("(remainder -7 3)", "-1");
    check("(max 1 2.0 3)", "3.0");
    check("(expt 2 16)", "65536");
    check("(- 5)", "-5");
    check("(< 1 2 3 4)", "#t");
    check("(<= 1 1 2)", "#t");
    check("(= 2 2 2)", "#t");
    check("(exact->inexact 1)", "1.0");
}

#[test]
fn list_library() {
    check("(append '(1) '(2 3) '() '(4))", "(1 2 3 4)");
    check("(reverse '(1 2 3))", "(3 2 1)");
    check("(length '(a b c))", "3");
    check("(list-tail '(a b c d) 2)", "(c d)");
    check("(memq 'c '(a b c d))", "(c d)");
    check("(assv 2 '((1 a) (2 b)))", "(2 b)");
    check("(map cadr '((a 1) (b 2)))", "(1 2)");
    check("(map + '(1 2 3) '(10 20 30))", "(11 22 33)");
    check("(filter pair? '(1 (2) () (3 4)))", "((2) (3 4))");
    check("(fold-left cons '() '(1 2 3))", "(((() . 1) . 2) . 3)");
    check("(fold-right cons '() '(1 2 3))", "(1 2 3)");
}

#[test]
fn equality_predicates() {
    check("(eq? 'a 'a)", "#t");
    check("(eq? '(a) '(a))", "#f");
    check("(eqv? 1.5 1.5)", "#t");
    check("(equal? '(1 (2)) '(1 (2)))", "#t");
    check("(equal? \"ab\" \"ab\")", "#t");
    check("(eq? \"ab\" \"ab\")", "#f");
    check("(equal? #(1 2) #(1 2))", "#t");
}

#[test]
fn vectors_and_strings() {
    check("(define v (make-vector 3 'x)) (vector-set! v 1 'y) v", "#(x y x)");
    check("(vector->list #(1 2 3))", "(1 2 3)");
    check("(list->vector '(a b))", "#(a b)");
    check("(string-append \"foo\" \"bar\")", "\"foobar\"");
    check("(substring \"hello\" 1 4)", "\"ell\"");
    check("(string->list \"ab\")", "(#\\a #\\b)");
    check("(list->string '(#\\x #\\y))", "\"xy\"");
    check("(string->symbol \"sym\")", "sym");
    check("(number->string 42)", "\"42\"");
    check("(string->number \"3.5\")", "3.5");
}

#[test]
fn proper_tail_calls_do_not_grow_the_stack() {
    // One million iterations: impossible without proper tail calls.
    check("(define (loop n) (if (= n 0) 'done (loop (- n 1)))) (loop 1000000)", "done");
    // Mutual recursion in tail position.
    check(
        "(define (even? n) (if (= n 0) #t (odd? (- n 1))))
         (define (odd? n) (if (= n 0) #f (even? (- n 1))))
         (even? 300000)",
        "#t",
    );
}

#[test]
fn shadowing_and_hygiene_basics() {
    check("(let ((else #f)) (cond (else 'hit) (#t 'fallthrough)))", "fallthrough");
    check("(let ((quote list)) (quote 1 2))", "(1 2)");
    check("(define (f lambda) (lambda 3 4)) (f +)", "7");
}

#[test]
fn internal_defines() {
    check(
        "(define (outer x)
           (define doubled (* x 2))
           (define (helper y) (+ doubled y))
           (helper 1))
         (outer 10)",
        "21",
    );
    // Mutually recursive internal defines (letrec* semantics).
    check(
        "(define (f n)
           (define (even? n) (if (= n 0) #t (odd? (- n 1))))
           (define (odd? n) (if (= n 0) #f (even? (- n 1))))
           (even? n))
         (f 10)",
        "#t",
    );
}

#[test]
fn io_effects_are_ordered() {
    let mut e = Engine::new().unwrap();
    e.eval("(for-each (lambda (x) (display x) (display \" \")) '(1 2 3))").unwrap();
    assert_eq!(e.take_output(), "1 2 3 ");
}

#[test]
fn deep_structures_print_and_compare() {
    check(
        "(define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
         (length (build 10000))",
        "10000",
    );
    check(
        "(define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
         (equal? (build 2000) (build 2000))",
        "#t",
    );
}

#[test]
fn error_messages_are_informative() {
    let mut e = Engine::new().unwrap();
    for (src, needle) in [
        ("(car '())", "car"),
        ("(vector-ref (vector 1) 3)", "out of range"),
        ("(undefined-proc 1)", "unbound"),
        ("((lambda (x) x))", "expected 1"),
        ("(let ((x)) x)", "binding"),
        ("(if)", "if"),
    ] {
        let err = e.eval(src).unwrap_err().to_string();
        assert!(err.contains(needle), "{src}: {err}");
    }
}

#[test]
fn runtime_errors_carry_backtraces() {
    use segstack::baselines::Strategy;
    for s in Strategy::ALL {
        let mut e = Engine::with_strategy(s).unwrap();
        let err = e
            .eval(
                "(define (innermost x) (+ 1 (car x)))
                 (define (middle x) (+ 1 (innermost x)))
                 (define (outer x) (+ 1 (middle x)))
                 (outer 5)",
            )
            .unwrap_err()
            .to_string();
        assert!(err.contains("not a pair"), "{s}: {err}");
        assert!(err.contains("in middle"), "{s}: missing frame: {err}");
        assert!(err.contains("in outer"), "{s}: missing frame: {err}");
        // Innermost first.
        let mid = err.find("in middle").unwrap();
        let out = err.find("in outer").unwrap();
        assert!(mid < out, "{s}: frames out of order: {err}");
    }
}

#[test]
fn backtraces_cross_segment_boundaries() {
    use segstack::baselines::Strategy;
    use segstack::core::Config;
    let cfg = Config::builder().segment_slots(160).frame_bound(48).copy_bound(16).build().unwrap();
    let mut e = Engine::builder().strategy(Strategy::Segmented).config(cfg).build().unwrap();
    // Deep recursion spans many segments; the walk must cross the sealed
    // records.
    e.eval("(define (deep n) (if (= n 0) (car 'boom) (+ 1 (deep (- n 1)))))").unwrap();
    let err = e.eval("(deep 50)").unwrap_err().to_string();
    let count = err.matches("in deep").count();
    assert!(count >= 10, "walk stopped early ({count} frames): {err}");
}

#[test]
fn delay_and_force_memoize() {
    check(
        "(define count 0)
         (define p (delay (begin (set! count (+ count 1)) (* 6 7))))
         (list (force p) (force p) count)",
        "(42 42 1)",
    );
    // Unforced promises never run.
    check("(define p2 (delay (error \"never\"))) 'ok", "ok");
}

#[test]
fn transcendental_functions() {
    check("(sin 0)", "0.0");
    check("(cos 0)", "1.0");
    check("(exp 0)", "1.0");
    check("(log 1)", "0.0");
    check("(atan 0)", "0.0");
    check("(< (abs (- (atan 1 1) 0.7853981633974483)) 0.000001)", "#t");
    check("(< 2.71 (exp 1) 2.72)", "#t");
    check("(exact? 1)", "#t");
    check("(exact? 1.0)", "#f");
    check("(inexact? 1.5)", "#t");
}

#[test]
fn extended_comparisons() {
    check("(char>? #\\b #\\a)", "#t");
    check("(char<=? #\\a #\\a)", "#t");
    check("(char>=? #\\a #\\b)", "#f");
    check("(string>? \"b\" \"a\")", "#t");
    check("(string<=? \"ab\" \"ab\")", "#t");
    check("(string>=? \"a\" \"b\")", "#f");
}

#[test]
fn string_ports() {
    check(
        "(call-with-output-string
           (lambda (port)
             (display \"x = \" port)
             (write \"s\" port)
             (newline port)
             (display '(1 2) port)))",
        "\"x = \\\"s\\\"\\n(1 2)\"",
    );
    check("(port? (open-output-string))", "#t");
    check("(port? \"not a port\")", "#f");
    // Ports are independent of the engine's main output.
    let mut e = Engine::new().unwrap();
    let v = e
        .eval(
            "(define p (open-output-string))
             (display \"to-port\" p)
             (display \"to-main\")
             (get-output-string p)",
        )
        .unwrap();
    assert_eq!(v.to_string(), "\"to-port\"");
    assert_eq!(e.take_output(), "to-main");
}

#[test]
fn syntax_rules_macros_end_to_end() {
    // A swap! macro (the classic non-hygienic demo).
    check(
        "(define-syntax swap!
           (syntax-rules ()
             ((_ a b) (let ((tmp a)) (set! a b) (set! b tmp)))))
         (define x 1) (define y 2)
         (swap! x y)
         (list x y)",
        "(2 1)",
    );
    // A while loop built from named let.
    check(
        "(define-syntax while
           (syntax-rules ()
             ((_ test body ...)
              (let loop ()
                (when test body ... (loop))))))
         (define i 0) (define acc '())
         (while (< i 5) (set! acc (cons i acc)) (set! i (+ i 1)))
         (reverse acc)",
        "(0 1 2 3 4)",
    );
    // my-let via ellipsis over structured subpatterns.
    check(
        "(define-syntax my-let
           (syntax-rules ()
             ((_ ((name val) ...) body ...)
              ((lambda (name ...) body ...) val ...))))
         (my-let ((a 2) (b 3)) (* a b))",
        "6",
    );
    // Recursive macro: my-and.
    check(
        "(define-syntax my-and
           (syntax-rules ()
             ((_) #t)
             ((_ e) e)
             ((_ e rest ...) (if e (my-and rest ...) #f))))
         (list (my-and) (my-and 1 2 3) (my-and 1 #f 3))",
        "(#t 3 #f)",
    );
    // Macros whose expansion defines things at top level.
    check(
        "(define-syntax defconst
           (syntax-rules ()
             ((_ name val) (define name val))))
         (defconst answer 42)
         answer",
        "42",
    );
    // Literals direct rule choice.
    check(
        "(define-syntax arrow
           (syntax-rules (->)
             ((_ a -> b) (cons a b))
             ((_ a b) (list a b))))
         (list (arrow 1 -> 2) (arrow 1 2))",
        "((1 . 2) (1 2))",
    );
}

#[test]
fn syntax_rules_errors() {
    let mut e = Engine::new().unwrap();
    // Divergent macro hits the depth guard, not a hang.
    let err = e
        .eval(
            "(define-syntax diverge (syntax-rules () ((_ x) (diverge x))))
             (diverge 1)",
        )
        .unwrap_err()
        .to_string();
    assert!(err.contains("divergent"), "{err}");
    // define-syntax is top-level only.
    let err = e
        .eval("(define (f) (define-syntax m (syntax-rules () ((_ ) 1))) (m))")
        .unwrap_err()
        .to_string();
    assert!(err.contains("top level"), "{err}");
    // No matching rule.
    e.eval("(define-syntax one (syntax-rules () ((_ a) a)))").unwrap();
    let err = e.eval("(one 1 2)").unwrap_err().to_string();
    assert!(err.contains("no syntax-rules pattern"), "{err}");
}

#[test]
fn shadowed_macro_names_are_ordinary_variables() {
    check(
        "(define-syntax twice (syntax-rules () ((_ e) (begin e e))))
         (let ((twice (lambda (x) (* 2 x))))
           (twice 21))",
        "42",
    );
}

#[test]
fn multiple_values() {
    check("(call-with-values (lambda () (values 1 2 3)) list)", "(1 2 3)");
    check("(call-with-values (lambda () (values)) (lambda () 'none))", "none");
    check("(call-with-values (lambda () 42) (lambda (x) (* x 2)))", "84");
    check("(call-with-values (lambda () (values 3 4)) +)", "7");
    check("(values 9)", "9");
    // Through a continuation boundary.
    check(
        "(call-with-values
           (lambda () (call/cc (lambda (k) (k (values 1 2)))))
           list)",
        "(1 2)",
    );
}

#[test]
fn prelude_sort() {
    check("(sort '(3 1 2) <)", "(1 2 3)");
    check("(sort '() <)", "()");
    check("(sort '(5) <)", "(5)");
    check("(sort '(1 2 3 4) >)", "(4 3 2 1)");
    check("(sort '(\"pear\" \"apple\" \"fig\") string<?)", "(\"apple\" \"fig\" \"pear\")");
    // Stable enough to be deterministic on duplicates.
    check("(sort '(2 1 2 1) <)", "(1 1 2 2)");
}

#[test]
fn stack_frames_introspection() {
    use segstack::baselines::Strategy;
    for s in Strategy::ALL {
        let mut e = Engine::with_strategy(s).unwrap();
        let v = e
            .eval(
                "(define (innermost) (stack-frames))
                 (define (middle) (cons 'm (innermost)))
                 (define (outer) (cons 'o (middle)))
                 (outer)",
            )
            .unwrap()
            .to_string();
        // Walking from inside `innermost`: the pending returns are into
        // middle, then outer, then the toplevel chunk.
        assert!(v.contains("middle"), "{s}: {v}");
        assert!(v.contains("outer"), "{s}: {v}");
        let m = v.find("middle").unwrap();
        let o = v.find("outer").unwrap();
        assert!(m < o, "{s}: innermost first: {v}");
    }
    // The limit argument truncates the walk.
    let mut e = Engine::new().unwrap();
    let v = e
        .eval(
            "(define (deep n) (if (= n 0) (length (stack-frames 3)) (+ 0 (deep (- n 1)))))
             (deep 50)",
        )
        .unwrap();
    assert_eq!(v.to_string(), "3");
}

#[test]
fn string_mutation() {
    check(
        "(define s (make-string 3 #\\a))
         (string-set! s 1 #\\b)
         s",
        "\"aba\"",
    );
    check(
        "(define s (string-copy \"xyz\"))
         (string-fill! s #\\q)
         s",
        "\"qqq\"",
    );
    // string-copy detaches storage.
    check(
        "(define a \"abc\")
         (define b (string-copy a))
         (string-set! b 0 #\\z)
         (list a b)",
        "(\"abc\" \"zbc\")",
    );
    let mut e = Engine::new().unwrap();
    assert!(e.eval("(string-set! \"abc\" 9 #\\x)").is_err());
}

#[test]
fn block_comments_in_programs() {
    check("(+ 1 #| one |# 2 #| #| nested |# |# 3)", "6");
}

#[test]
fn runtime_eval() {
    check("(eval '(+ 1 2))", "3");
    check("(eval (list '+ 1 2))", "3");
    // eval sees and affects the global environment.
    check("(define x 10) (eval '(define y (* x 2))) (+ x y)", "30");
    // Data built at runtime, compiled at runtime.
    check(
        "(define (make-adder-src n) (list 'lambda '(v) (list '+ 'v n)))
         ((eval (make-adder-src 5)) 37)",
        "42",
    );
    // eval in tail position.
    check("(define (run d) (eval d)) (run '(if #t 'yes 'no))", "yes");
    // read + eval round trip.
    check("(eval (read-from-string \"(* 6 7)\"))", "42");
    // Errors inside eval'd code surface normally.
    let mut e = Engine::new().unwrap();
    assert!(e.eval("(eval '(car 5))").is_err());
    assert!(e.eval("(eval '(unbound-in-eval))").is_err());
    // And the engine recovers.
    assert_eq!(e.eval_to_string("(eval '(+ 2 2))").unwrap(), "4");
    // Macros are visible to runtime eval (shared expander).
    check(
        "(define-syntax twice (syntax-rules () ((_ e) (begin e e))))
         (define n 0)
         (eval '(twice (set! n (+ n 1))))
         n",
        "2",
    );
    // call/cc interacts with eval'd code.
    check("(+ 1 (call/cc (lambda (k) (eval (list k 41)))))", "42");
}
