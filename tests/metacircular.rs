//! The metacircular evaluator: Scheme-in-Scheme running on every
//! control-stack strategy — environments as data, closures as lists, and
//! self-application recursion, two interpreter levels deep.

use segstack::baselines::Strategy;
use segstack::scheme::Engine;

const META: &str = include_str!("programs/meta.scm");

#[test]
fn metacircular_evaluator_runs_on_all_strategies() {
    let expected = "(377 6 (1 4 9 16 25) 3 (1 2 3))";
    for s in Strategy::ALL {
        let mut e = Engine::builder().strategy(s).max_steps(200_000_000).build().unwrap();
        let got = e.eval_to_string(META).unwrap_or_else(|err| panic!("{s}: {err}"));
        assert_eq!(got, expected, "{s}");
    }
}

#[test]
fn metacircular_errors_surface_as_host_errors() {
    let mut e = Engine::builder().max_steps(200_000_000).build().unwrap();
    e.eval(META).unwrap();
    let err = e.eval("(meta-eval 'unbound-var (base-env))").unwrap_err().to_string();
    assert!(err.contains("meta: unbound"), "{err}");
    let err = e.eval("(meta-eval '(7 8) (base-env))").unwrap_err().to_string();
    assert!(err.contains("not applicable"), "{err}");
}

#[test]
fn metacircular_composes_with_host_continuations() {
    // Capture a host continuation *inside* a bridged primitive while the
    // meta-level evaluator is running, escape, and re-enter.
    let mut e = Engine::builder().max_steps(200_000_000).build().unwrap();
    e.eval(META).unwrap();
    let v = e
        .eval(
            "(define k #f)
             (define passes 0)
             (define env (cons (cons 'snap (lambda (x) (call/cc (lambda (c) (set! k c) x))))
                               (base-env)))
             (define r (meta-eval '(+ 100 (snap 1)) env))
             (set! passes (+ passes 1))
             (if (< passes 3) (k (* passes 10)) (list r passes))",
        )
        .unwrap();
    assert_eq!(v.to_string(), "(120 3)");
}
