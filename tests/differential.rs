//! Differential testing: the five control-stack strategies must be
//! observationally identical.
//!
//! The assignment-conversion invariant (frame slots are single-assignment
//! per activation) is exactly what makes frame *sharing* (heap, hybrid)
//! equivalent to frame *copying* (copy, cache, segmented). These tests
//! check that equivalence on a fixed corpus and on randomly generated
//! programs.

use segstack::baselines::Strategy;
use segstack::core::rng::SplitMix64;
use segstack::core::Config;
use segstack::scheme::{CheckPolicy, Engine};

/// Evaluates `src` under a strategy, returning printed value or error text.
fn run_on(strategy: Strategy, cfg: &Config, src: &str) -> Result<String, String> {
    let mut e = Engine::builder()
        .strategy(strategy)
        .config(cfg.clone())
        .max_steps(50_000_000)
        .build()
        .map_err(|e| e.to_string())?;
    let v = e.eval(src).map_err(|e| e.to_string())?;
    let out = e.take_output();
    Ok(format!("{out}|{v}"))
}

#[track_caller]
fn agree(cfg: &Config, src: &str) {
    let reference = run_on(Strategy::Segmented, cfg, src);
    for s in
        [Strategy::Heap, Strategy::Copy, Strategy::Cache, Strategy::Hybrid, Strategy::Incremental]
    {
        let got = run_on(s, cfg, src);
        assert_eq!(got, reference, "strategy {s} diverges on:\n{src}");
    }
}

fn default_cfg() -> Config {
    Config::default()
}

/// A stressed configuration: small segments force frequent overflow,
/// a tiny copy bound forces splitting on nearly every reinstatement.
fn stressed_cfg() -> Config {
    Config::builder().segment_slots(256).frame_bound(48).copy_bound(16).build().unwrap()
}

const CORPUS: &[(&str, &str)] = &[
    ("fib", "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 17)"),
    (
        "tak",
        "(define (tak x y z)
           (if (not (< y x)) z
               (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
         (tak 14 10 5)",
    ),
    ("ctak", include_str!("programs/ctak.scm")),
    ("sort", include_str!("programs/sort.scm")),
    ("deriv", include_str!("programs/deriv.scm")),
    ("queens", include_str!("programs/queens.scm")),
    ("generators", include_str!("programs/generators.scm")),
    ("boyer", include_str!("programs/boyer.scm")),
    ("deep-sum", "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1))))) (sum 30000)"),
    (
        "ackermann",
        "(define (ack m n)
           (cond ((= m 0) (+ n 1))
                 ((= n 0) (ack (- m 1) 1))
                 (else (ack (- m 1) (ack m (- n 1))))))
         (list (ack 2 3) (ack 3 3))",
    ),
    (
        "string-churn",
        "(define (churn n acc)
           (if (= n 0)
               (string-length acc)
               (churn (- n 1)
                      (substring (string-append acc (number->string n)) 0
                                 (min 40 (string-length (string-append acc \"x\")))))))
         (churn 200 \"\")",
    ),
    (
        "mutual-tail",
        "(define (ev? n) (if (= n 0) #t (od? (- n 1))))
         (define (od? n) (if (= n 0) #f (ev? (- n 1))))
         (list (ev? 100000) (od? 99999))",
    ),
    (
        "escape-product",
        "(define (product lst)
           (call/cc (lambda (exit)
             (let loop ((l lst) (acc 1))
               (cond ((null? l) acc)
                     ((= (car l) 0) (exit 0))
                     (else (loop (cdr l) (* acc (car l)))))))))
         (list (product '(1 2 3 4)) (product '(9 9 0 9)))",
    ),
    (
        "io-ordering",
        "(define (countdown n)
           (if (= n 0) (display \"go\") (begin (display n) (display \" \") (countdown (- n 1)))))
         (countdown 5)",
    ),
    ("errors", "(define (boom) (car 42)) (boom)"),
];

#[test]
fn corpus_agrees_on_default_config() {
    for (name, src) in CORPUS {
        let cfg = default_cfg();
        let reference = run_on(Strategy::Segmented, &cfg, src);
        for s in [
            Strategy::Heap,
            Strategy::Copy,
            Strategy::Cache,
            Strategy::Hybrid,
            Strategy::Incremental,
        ] {
            assert_eq!(run_on(s, &cfg, src), reference, "{name} diverges under {s}");
        }
    }
}

#[test]
fn corpus_agrees_under_stress_config() {
    for (name, src) in CORPUS {
        let cfg = stressed_cfg();
        let reference = run_on(Strategy::Segmented, &cfg, src);
        for s in [
            Strategy::Heap,
            Strategy::Copy,
            Strategy::Cache,
            Strategy::Hybrid,
            Strategy::Incremental,
        ] {
            assert_eq!(run_on(s, &cfg, src), reference, "{name} diverges under {s} (stressed)");
        }
    }
}

#[test]
fn corpus_agrees_across_check_policies() {
    // The overflow-check policy must never change results, only counters.
    for (name, src) in CORPUS {
        let mut results = Vec::new();
        for policy in [CheckPolicy::Always, CheckPolicy::Elide] {
            let mut e =
                Engine::builder().check_policy(policy).max_steps(50_000_000).build().unwrap();
            let r = e.eval(src).map(|v| v.to_string()).map_err(|e| e.to_string());
            results.push((policy, r));
        }
        assert_eq!(results[0].1, results[1].1, "{name} diverges across check policies");
    }
}

// ---- property-based random programs ---------------------------------------

/// Variable pool for generated programs.
const VARS: [&str; 5] = ["va", "vb", "vc", "vd", "ve"];

/// Draws a numeric leaf or (when available) a bound variable from the
/// bitmask over [`VARS`].
fn leaf(rng: &mut SplitMix64, bound: u8) -> String {
    let bound_vars: Vec<&'static str> =
        VARS.iter().enumerate().filter(|(i, _)| bound & (1 << i) != 0).map(|(_, v)| *v).collect();
    if !bound_vars.is_empty() && rng.gen_bool() {
        (*rng.choose(&bound_vars)).to_string()
    } else {
        rng.gen_range_i64(-50, 50).to_string()
    }
}

/// Generates a deterministic expression using only bound variables from
/// `bound` (a bitmask over [`VARS`]). `k_depth` counts enclosing `call/cc`
/// receivers whose continuation parameter may be invoked. Draws come from
/// the seeded generator, so a failing program is reproducible from its
/// seed alone.
fn arb_expr(rng: &mut SplitMix64, depth: u32, bound: u8, k_depth: u8) -> String {
    if depth == 0 {
        return leaf(rng, bound);
    }
    let sub = |rng: &mut SplitMix64| arb_expr(rng, depth - 1, bound, k_depth);
    loop {
        match rng.gen_range(0, 10) {
            0 => return leaf(rng, bound),
            1 => {
                let (a, b) = (sub(rng), sub(rng));
                return format!("(+ {a} {b})");
            }
            2 => {
                let (a, b) = (sub(rng), sub(rng));
                return format!("(- {a} {b})");
            }
            3 => {
                let (a, b) = (sub(rng), sub(rng));
                return format!("(min {a} (* 3 {b}))");
            }
            4 => {
                let (c, t, e) = (sub(rng), sub(rng), sub(rng));
                return format!("(if (< {c} 0) {t} {e})");
            }
            5 => {
                let (a, b) = (sub(rng), sub(rng));
                return format!("(begin {a} {b})");
            }
            6 => {
                // let-binding an unbound or shadowed variable.
                let eligible: Vec<usize> =
                    (0..VARS.len()).filter(|&i| i < 2 || bound & (1 << i) != 0).collect();
                let i = *rng.choose(&eligible);
                let v = VARS[i];
                let a = sub(rng);
                let b = arb_expr(rng, depth - 1, bound | (1 << i), k_depth);
                return format!("(let (({v} {a})) {b})");
            }
            7 => {
                // set! on a bound variable, when any is in scope.
                if bound == 0 {
                    continue;
                }
                let bound_vars: Vec<&'static str> = VARS
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| bound & (1 << i) != 0)
                    .map(|(_, v)| *v)
                    .collect();
                let v = *rng.choose(&bound_vars);
                let (a, b) = (sub(rng), sub(rng));
                return format!("(begin (set! {v} {a}) {b})");
            }
            8 => {
                // Direct lambda application (exercises closures and frames).
                let b = arb_expr(rng, depth - 1, bound | 1, k_depth);
                let a = sub(rng);
                return format!("((lambda ({}) {b}) {a})", VARS[0]);
            }
            _ => {
                // call/cc: the continuation may be invoked (escape) or
                // ignored; nesting is capped at three receivers.
                if k_depth >= 3 {
                    continue;
                }
                let kname = format!("k{k_depth}");
                let b = arb_expr(rng, depth - 1, bound, k_depth + 1);
                if rng.gen_bool() {
                    let a = sub(rng);
                    return format!("(call/cc (lambda ({kname}) (+ 1 ({kname} {a}) {b})))");
                }
                return format!("(call/cc (lambda ({kname}) {b}))");
            }
        }
    }
}

/// Random programs evaluate identically on all six strategies, both on
/// the default and on the stressed configuration.
#[test]
fn random_programs_agree() {
    for seed in 0..64u64 {
        let src = arb_expr(&mut SplitMix64::new(seed), 4, 0, 0);
        agree(&default_cfg(), &src);
        agree(&stressed_cfg(), &src);
    }
}

/// Random programs under a deep driver: run the generated expression
/// inside a non-tail recursion so captures happen at depth and
/// overflow/underflow paths engage under the stressed configuration.
#[test]
fn random_programs_agree_at_depth() {
    // A disjoint seed range from `random_programs_agree`, for variety.
    for seed in 5000..5064u64 {
        let src = arb_expr(&mut SplitMix64::new(seed), 3, 0, 0);
        let program = format!(
            "(define (drive n) (if (= n 0) {src} (+ 1 (drive (- n 1)))))
             (drive 60)"
        );
        agree(&stressed_cfg(), &program);
    }
}
