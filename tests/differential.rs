//! Differential testing: the six control-stack strategies must be
//! observationally identical.
//!
//! The assignment-conversion invariant (frame slots are single-assignment
//! per activation) is exactly what makes frame *sharing* (heap, hybrid)
//! equivalent to frame *copying* (copy, cache, segmented). These tests
//! check that equivalence on a fixed corpus, and delegate the generative
//! side to the shared `segstack-fuzz` generators: trace-level sequences
//! against the vector-of-frames oracle, and program-level `call/cc`-heavy
//! expressions through full engines. Failing seeds from fuzz campaigns
//! get checked in as named `tests/programs/fuzz_*.scm` regressions.

use segstack::baselines::Strategy;
use segstack::core::Config;
use segstack::scheme::{CheckPolicy, Engine};
use segstack_fuzz::progs::{agree_on, gen_driven_program, gen_program, run_on, stressed_cfg};
use segstack_fuzz::{fuzz_trace, TraceSpec};

#[track_caller]
fn agree(cfg: &Config, src: &str) {
    if let Err(e) = agree_on(cfg, src) {
        panic!("{e}");
    }
}

fn default_cfg() -> Config {
    Config::default()
}

const CORPUS: &[(&str, &str)] = &[
    ("fib", "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 17)"),
    (
        "tak",
        "(define (tak x y z)
           (if (not (< y x)) z
               (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
         (tak 14 10 5)",
    ),
    ("ctak", include_str!("programs/ctak.scm")),
    ("sort", include_str!("programs/sort.scm")),
    ("deriv", include_str!("programs/deriv.scm")),
    ("queens", include_str!("programs/queens.scm")),
    ("generators", include_str!("programs/generators.scm")),
    ("boyer", include_str!("programs/boyer.scm")),
    // Named regressions minted by the fuzzer's program generator.
    ("fuzz-escape", include_str!("programs/fuzz_escape.scm")),
    ("fuzz-branchy", include_str!("programs/fuzz_branchy.scm")),
    ("fuzz-nested-k", include_str!("programs/fuzz_nested_k.scm")),
    ("fuzz-ic-redefine", include_str!("programs/fuzz_ic_redefine.scm")),
    ("fuzz-interproc-poison", include_str!("programs/fuzz_interproc_poison.scm")),
    ("deep-sum", "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1))))) (sum 30000)"),
    (
        "ackermann",
        "(define (ack m n)
           (cond ((= m 0) (+ n 1))
                 ((= n 0) (ack (- m 1) 1))
                 (else (ack (- m 1) (ack m (- n 1))))))
         (list (ack 2 3) (ack 3 3))",
    ),
    (
        "string-churn",
        "(define (churn n acc)
           (if (= n 0)
               (string-length acc)
               (churn (- n 1)
                      (substring (string-append acc (number->string n)) 0
                                 (min 40 (string-length (string-append acc \"x\")))))))
         (churn 200 \"\")",
    ),
    (
        "mutual-tail",
        "(define (ev? n) (if (= n 0) #t (od? (- n 1))))
         (define (od? n) (if (= n 0) #f (ev? (- n 1))))
         (list (ev? 100000) (od? 99999))",
    ),
    (
        "escape-product",
        "(define (product lst)
           (call/cc (lambda (exit)
             (let loop ((l lst) (acc 1))
               (cond ((null? l) acc)
                     ((= (car l) 0) (exit 0))
                     (else (loop (cdr l) (* acc (car l)))))))))
         (list (product '(1 2 3 4)) (product '(9 9 0 9)))",
    ),
    (
        "io-ordering",
        "(define (countdown n)
           (if (= n 0) (display \"go\") (begin (display n) (display \" \") (countdown (- n 1)))))
         (countdown 5)",
    ),
    ("errors", "(define (boom) (car 42)) (boom)"),
];

#[test]
fn corpus_agrees_on_default_config() {
    for (name, src) in CORPUS {
        if let Err(e) = agree_on(&default_cfg(), src) {
            panic!("{name}: {e}");
        }
    }
}

#[test]
fn corpus_agrees_under_stress_config() {
    for (name, src) in CORPUS {
        if let Err(e) = agree_on(&stressed_cfg(), src) {
            panic!("{name} (stressed): {e}");
        }
    }
}

#[test]
fn corpus_agrees_across_check_policies() {
    // The overflow-check policy — including the interprocedural elision
    // pass — must never change results, only counters.
    for (name, src) in CORPUS {
        let mut results = Vec::new();
        for (policy, interproc) in
            [(CheckPolicy::Always, false), (CheckPolicy::Elide, false), (CheckPolicy::Elide, true)]
        {
            let mut e = Engine::builder()
                .check_policy(policy)
                .interprocedural_elision(interproc)
                .max_steps(50_000_000)
                .build()
                .unwrap();
            let r = e.eval(src).map(|v| v.to_string()).map_err(|e| e.to_string());
            results.push((policy, interproc, r));
        }
        assert_eq!(results[0].2, results[1].2, "{name} diverges across check policies");
        assert_eq!(results[1].2, results[2].2, "{name} diverges under interprocedural elision");
    }
}

#[test]
fn named_fuzz_regressions_have_stable_results() {
    // The checked-in regressions must keep evaluating to the same values:
    // a change here means evaluator semantics moved, not just the fuzzer.
    let cfg = default_cfg();
    let expected: &[(&str, &str)] = &[
        ("fuzz-escape", "|1"),
        ("fuzz-branchy", "|40"),
        ("fuzz-nested-k", "|14"),
        ("fuzz-ic-redefine", "|(11 20 7 10 100)"),
        ("fuzz-interproc-poison", "|(2026 done)"),
    ];
    for (name, want) in expected {
        let (_, src) = CORPUS.iter().find(|(n, _)| n == name).unwrap();
        let got = run_on(Strategy::Segmented, &cfg, src).unwrap();
        assert_eq!(&got, want, "{name} changed value");
    }
}

// ---- property-based random traces and programs ----------------------------

/// Machine-level traces: every strategy against the shared oracle, with
/// invariant audits on the segmented machine. This is the same harness the
/// `segstack-fuzz` CLI drives at scale; a failure message includes the
/// shrunk replay seed.
#[test]
fn random_traces_agree_with_the_oracle() {
    for seed in 0..300u64 {
        let spec = TraceSpec::generate(seed, 64);
        if let Err(e) = fuzz_trace(&spec) {
            panic!("replay with `cargo run -p segstack-fuzz -- --seed {seed} --ops 64`:\n{e}");
        }
    }
}

/// Random programs evaluate identically on all six strategies, both on
/// the default and on the stressed configuration.
#[test]
fn random_programs_agree() {
    for seed in 0..64u64 {
        let src = gen_program(seed, 4);
        agree(&default_cfg(), &src);
        agree(&stressed_cfg(), &src);
    }
}

/// Random programs under a deep driver: run the generated expression
/// inside a non-tail recursion so captures happen at depth and
/// overflow/underflow paths engage under the stressed configuration.
#[test]
fn random_programs_agree_at_depth() {
    // A disjoint seed range from `random_programs_agree`, for variety.
    for seed in 5000..5064u64 {
        let program = gen_driven_program(seed, 3);
        agree(&stressed_cfg(), &program);
    }
}
