;; The continuation-intensive tak benchmark: every recursion level captures
;; a continuation and results are returned by invoking them.
(define (ctak x y z) (call/cc (lambda (k) (ctak-aux k x y z))))
(define (ctak-aux k x y z)
  (if (not (< y x))
      (k z)
      (call/cc (lambda (k)
        (ctak-aux k
          (call/cc (lambda (k) (ctak-aux k (- x 1) y z)))
          (call/cc (lambda (k) (ctak-aux k (- y 1) z x)))
          (call/cc (lambda (k) (ctak-aux k (- z 1) x y))))))))
(ctak 12 8 4)
