;; Merge sort over a pseudo-random list (linear congruential generator).
(define (make-list-lcg n seed)
  (let loop ((i n) (s seed) (acc '()))
    (if (= i 0)
        acc
        (let ((next (modulo (+ (* s 1103515245) 12345) 2147483648)))
          (loop (- i 1) next (cons (modulo next 1000) acc))))))

(define (merge a b)
  (cond ((null? a) b)
        ((null? b) a)
        ((<= (car a) (car b)) (cons (car a) (merge (cdr a) b)))
        (else (cons (car b) (merge a (cdr b))))))

(define (split lst)
  (if (or (null? lst) (null? (cdr lst)))
      (cons lst '())
      (let ((rest (split (cddr lst))))
        (cons (cons (car lst) (car rest))
              (cons (cadr lst) (cdr rest))))))

(define (merge-sort lst)
  (if (or (null? lst) (null? (cdr lst)))
      lst
      (let ((halves (split lst)))
        (merge (merge-sort (car halves)) (merge-sort (cdr halves))))))

(define (sorted? lst)
  (or (null? lst) (null? (cdr lst))
      (and (<= (car lst) (cadr lst)) (sorted? (cdr lst)))))

(define data (make-list-lcg 400 42))
(define sorted (merge-sort data))
(list (sorted? sorted) (length sorted) (car sorted) (fold-left + 0 sorted))
