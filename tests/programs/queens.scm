;; n-queens by plain recursion (no continuations): returns solution count.
(define (safe? row placed dist)
  (cond ((null? placed) #t)
        ((= (car placed) row) #f)
        ((= (abs (- (car placed) row)) dist) #f)
        (else (safe? row (cdr placed) (+ dist 1)))))

(define (count-queens n)
  (define (try col placed)
    (if (= col n)
        1
        (let loop ((row 0) (acc 0))
          (if (= row n)
              acc
              (loop (+ row 1)
                    (if (safe? row placed 1)
                        (+ acc (try (+ col 1) (cons row placed)))
                        acc))))))
  (try 0 '()))

(count-queens 6)
