;; A metacircular Scheme evaluator, itself running on segstack's VM: the
;; classic stress test for environments, closures and recursion depth.

(define (env-lookup var env)
  (let ((hit (assq var env)))
    (if hit (cdr hit) (error "meta: unbound" var))))

(define (env-extend params args env)
  (cond ((null? params) env)
        ((symbol? params) (cons (cons params args) env))
        (else (cons (cons (car params) (car args))
                    (env-extend (cdr params) (cdr args) env)))))

(define (meta-eval exp env)
  (cond ((number? exp) exp)
        ((boolean? exp) exp)
        ((string? exp) exp)
        ((symbol? exp) (env-lookup exp env))
        ((pair? exp)
         (let ((head (car exp)))
           (cond ((eq? head 'quote) (cadr exp))
                 ((eq? head 'if)
                  (if (meta-eval (cadr exp) env)
                      (meta-eval (caddr exp) env)
                      (if (null? (cdddr exp))
                          'meta-unspecified
                          (meta-eval (cadddr exp) env))))
                 ((eq? head 'lambda)
                  (list 'meta-closure (cadr exp) (cddr exp) env))
                 ((eq? head 'begin) (eval-sequence (cdr exp) env))
                 ((eq? head 'let)
                  ;; (let ((v e)...) body...) without defines
                  (meta-eval
                    (cons (cons 'lambda (cons (map car (cadr exp)) (cddr exp)))
                          (map cadr (cadr exp)))
                    env))
                 (else
                  (meta-apply (meta-eval head env)
                              (map (lambda (a) (meta-eval a env)) (cdr exp)))))))
        (else (error "meta: cannot evaluate" exp))))

(define (eval-sequence body env)
  (if (null? (cdr body))
      (meta-eval (car body) env)
      (begin (meta-eval (car body) env)
             (eval-sequence (cdr body) env))))

(define (meta-apply f args)
  (cond ((procedure? f) (apply f args))       ;; host primitive bridge
        ((and (pair? f) (eq? (car f) 'meta-closure))
         (eval-sequence (caddr f)
                        (env-extend (cadr f) args (cadddr f))))
        (else (error "meta: not applicable" f))))

(define (base-env)
  (list (cons '+ +) (cons '- -) (cons '* *) (cons '= =) (cons '< <)
        (cons 'cons cons) (cons 'car car) (cons 'cdr cdr)
        (cons 'null? null?) (cons 'list list) (cons 'not not)))

;; letrec via self-application (the Y-combinator style fix):
(define fib-src
  '(((lambda (f) (lambda (n) ((f f) n)))
     (lambda (self)
       (lambda (n)
         (if (< n 2) n (+ ((self self) (- n 1)) ((self self) (- n 2)))))))
    14))

(define map-src
  '((((lambda (m) (lambda (f) (lambda (l) (((m m) f) l))))
      (lambda (self)
        (lambda (f)
          (lambda (l)
            (if (null? l)
                (quote ())
                (cons (f (car l)) (((self self) f) (cdr l))))))))
     (lambda (x) (* x x)))
    (quote (1 2 3 4 5))))

(list
  (meta-eval fib-src (base-env))
  (meta-eval '(let ((a 2) (b 3)) (* a b)) (base-env))
  (meta-eval map-src (base-env))
  (meta-eval '(begin 1 2 3) (base-env))
  (meta-eval '((lambda args args) 1 2 3) (base-env)))
