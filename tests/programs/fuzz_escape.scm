; Regression trace from the fuzzer's program generator (seed 5, depth 4):
; an escaping continuation invocation feeding a lambda application whose
; body mutates its parameter, with a second call/cc in argument position.
; Checked in verbatim so the shape survives generator changes.
((lambda (va)
   (if (< (min (call/cc (lambda (k0) (+ 1 (k0 va) va)))
               (* 3 (begin va va)))
          0)
       (+ (let ((vb va)) -41) (+ -19 va))
       (- (+ va va) (begin -27 va))))
 (call/cc (lambda (k0)
   ((lambda (va) (begin (set! va 1) va)) (min 5 (* 3 1))))))
