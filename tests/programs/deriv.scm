;; Symbolic differentiation (the classic Lisp benchmark shape).
(define (deriv exp var)
  (cond ((number? exp) 0)
        ((symbol? exp) (if (eq? exp var) 1 0))
        ((eq? (car exp) '+)
         (list '+ (deriv (cadr exp) var) (deriv (caddr exp) var)))
        ((eq? (car exp) '*)
         (list '+
               (list '* (cadr exp) (deriv (caddr exp) var))
               (list '* (deriv (cadr exp) var) (caddr exp))))
        (else (error "unknown operator" (car exp)))))

(define (simplify exp)
  (if (not (pair? exp))
      exp
      (let ((op (car exp)) (a (simplify (cadr exp))) (b (simplify (caddr exp))))
        (cond ((and (eq? op '+) (equal? a 0)) b)
              ((and (eq? op '+) (equal? b 0)) a)
              ((and (eq? op '*) (or (equal? a 0) (equal? b 0))) 0)
              ((and (eq? op '*) (equal? a 1)) b)
              ((and (eq? op '*) (equal? b 1)) a)
              ((and (number? a) (number? b)) (if (eq? op '+) (+ a b) (* a b)))
              (else (list op a b))))))

(define (nest exp n)
  (if (= n 0) exp (nest (list '* exp (list '+ 'x n)) (- n 1))))

(simplify (deriv (nest 'x 6) 'x))
