;; Re-entrant generators built directly on call/cc; consumed twice to force
;; multiple reinstatements of the same continuations.
(define (make-gen lst)
  (define return #f)
  (define resume #f)
  (define (start)
    (for-each (lambda (x)
                (call/cc (lambda (r) (set! resume r) (return x))))
              lst)
    (return 'done))
  (lambda ()
    (call/cc (lambda (k)
      (set! return k)
      (if resume (resume #f) (start))))))

(define (drain g)
  (let loop ((acc '()))
    (let ((v (g)))
      (if (eq? v 'done) (reverse acc) (loop (cons v acc))))))

(define g1 (make-gen '(1 2 3 4 5)))
(define g2 (make-gen '(10 20 30)))
(list (drain g1) (drain g2) (drain (make-gen '())))
