; Regression trace from the fuzzer's program generator (seed 32, depth 4):
; nested receivers k0/k1 where the outer continuation is invoked while the
; inner call/cc sits in the discarded operand of the + that never finishes.
(+ (- (call/cc (lambda (k0) (begin -39 31)))
      ((lambda (va) (begin 31 va)) (let ((vb -17)) vb)))
   (min (min (begin -28 -34) (* 3 (call/cc (lambda (k0) -6))))
        (* 3 (call/cc (lambda (k0)
               (+ 1 (k0 (let ((vb 37)) vb)) (call/cc (lambda (k1) -12))))))))
