; Regression for the inline-cache invalidation protocol: a global operator
; is both redefined (define) and assigned (set!) between calls inside one
; unit, so every cached call site must observe the new binding on its next
; dispatch — including the comparison fused into a test+branch
; superinstruction inside `count`, which flips from closure to closure.
(define (f x) (+ x 1))
(define (call-f n) (f n))
(define a (call-f 10))         ; fills the cache: f -> closure (+1)
(define (f x) (* x 2))         ; redefinition bumps the global's version
(define b (call-f 10))
(set! f (lambda (x) (- x 3)))  ; assignment bumps it again
(define c (call-f 10))
(define (lt? p q) (< p q))
(define (count n acc)
  (if (lt? n 1) acc (count (- n 1) (+ acc 1))))
(define d (count 10 0))        ; caches lt? at the fused branch site
(set! lt? (lambda (p q) #t))   ; now the loop exits immediately
(list a b c d (count 3 100))
