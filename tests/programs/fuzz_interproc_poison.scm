; Regression for interprocedural check elision under continuations: the
; sq/sumsq helper chain is bounded (so its call sites are elidable), but
; `grab` captures a continuation, so grab's own body must stay poisoned and
; keep its checks. Reinstating the continuation re-enters the rest of the
; unit from depth 2000 — an unsound elision that under-reserved frames for
; the helper chain would overflow past the reserve here.
(define (sq x) (* x x))
(define (sumsq a b) (+ (sq a) (sq b)))
(define k #f)
(define (grab x) (call/cc (lambda (c) (set! k c) (sumsq x 2))))
(define (deep n)
  (if (= n 0) (grab 3) (+ 1 (deep (- n 1)))))
(define first (deep 2000))
(define result
  (if k
      (let ((k0 k)) (set! k #f) (k0 (sumsq 5 1)))
      'done))
(list first result)
