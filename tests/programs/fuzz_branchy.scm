; Regression trace from the fuzzer's program generator (seed 27, depth 4):
; six call/cc sites spread over both arms of nested conditionals, mixing
; escaping ((k0 v) in operand position) and ignored receivers.
(if (< (if (< (min (- 4 -18) (* 3 (let ((va 27)) 28))) 0)
           (if (< (call/cc (lambda (k0) (+ 1 (k0 27) -33))) 0)
               (- 49 -50)
               (call/cc (lambda (k0) (+ 1 (k0 30) 28))))
           (- (- 2 -1) (call/cc (lambda (k0) 42))))
       0)
    (+ (begin (if (< -29 0) -19 -17) (begin 37 33))
       (if (< (begin -34 -44) 0) (- 17 10) (+ -29 -18)))
    (if (< (min (min -20 (* 3 47))
                (* 3 (call/cc (lambda (k0) (+ 1 (k0 -10) -5)))))
           0)
        (call/cc (lambda (k0) (+ 1 (k0 (+ -5 -27)) (+ -38 11))))
        (let ((vb (let ((vb 8)) 26))) (let ((va vb)) 47))))
