;; A compact Boyer-style rewriting theorem prover (after the Gabriel
;; benchmark): one-way unification, a lemma database keyed by operator,
;; exhaustive rewriting, and IF-tautology checking. List- and
;; symbol-intensive, deeply recursive.

(define lemmas '())

(define (add-lemma! eq)
  ;; eq = (equal lhs rhs)
  (let ((lhs (cadr eq)) (rhs (caddr eq)))
    (let ((op (car lhs)))
      (let ((hit (assq op lemmas)))
        (if hit
            (set-cdr! hit (cons (cons lhs rhs) (cdr hit)))
            (set! lemmas (cons (list op (cons lhs rhs)) lemmas)))))))

(define (rules-for op)
  (let ((hit (assq op lemmas)))
    (if hit (cdr hit) '())))

;; One-way unification: pattern variables are symbols; terms match
;; literally. Returns #f or an extended substitution alist.
(define (one-way-unify pat term subst)
  (cond ((not (pair? pat))
         (if (symbol? pat)
             (let ((bound (assq pat subst)))
               (cond (bound (if (equal? (cdr bound) term) subst #f))
                     (else (cons (cons pat term) subst))))
             (if (equal? pat term) subst #f)))
        ((not (pair? term)) #f)
        ((eq? (car pat) (car term))
         (let loop ((ps (cdr pat)) (ts (cdr term)) (s subst))
           (cond ((and (null? ps) (null? ts)) s)
                 ((or (null? ps) (null? ts)) #f)
                 (else
                  (let ((s2 (one-way-unify (car ps) (car ts) s)))
                    (if s2 (loop (cdr ps) (cdr ts) s2) #f))))))
        (else #f)))

(define (apply-subst subst term)
  (cond ((not (pair? term))
         (if (symbol? term)
             (let ((bound (assq term subst)))
               (if bound (cdr bound) term))
             term))
        (else (cons (car term) (map (lambda (t) (apply-subst subst t)) (cdr term))))))

(define (rewrite term)
  (if (not (pair? term))
      term
      (rewrite-with-lemmas
        (cons (car term) (map rewrite (cdr term)))
        (rules-for (car term)))))

(define (rewrite-with-lemmas term rules)
  (cond ((null? rules) term)
        ((one-way-unify (car (car rules)) term '())
         => (lambda (subst) (rewrite (apply-subst subst (cdr (car rules))))))
        (else (rewrite-with-lemmas term (cdr rules)))))

;; Tautology checking over rewritten IF-terms.
(define (truep x lst) (or (equal? x '(t)) (member x lst)))
(define (falsep x lst) (or (equal? x '(f)) (member x lst)))

(define (tautologyp x true-lst false-lst)
  (cond ((truep x true-lst) #t)
        ((falsep x false-lst) #f)
        ((not (pair? x)) #f)
        ((eq? (car x) 'if)
         (let ((test (cadr x)) (then (caddr x)) (else* (cadddr x)))
           (cond ((truep test true-lst) (tautologyp then true-lst false-lst))
                 ((falsep test false-lst) (tautologyp else* true-lst false-lst))
                 (else (and (tautologyp then (cons test true-lst) false-lst)
                            (tautologyp else* true-lst (cons test false-lst)))))))
        (else #f)))

(define (tautp x) (tautologyp (rewrite x) '() '()))

;; The lemma database (a representative slice of the Gabriel set).
(for-each add-lemma!
  '((equal (and p q) (if p (if q (t) (f)) (f)))
    (equal (or p q) (if p (t) (if q (t) (f))))
    (equal (not p) (if p (f) (t)))
    (equal (implies p q) (if p (if q (t) (f)) (t)))
    (equal (iff p q) (and (implies p q) (implies q p)))
    (equal (plus (plus x y) z) (plus x (plus y z)))
    (equal (equal (plus a b) (zero)) (and (zerop a) (zerop b)))
    (equal (difference x x) (zero))
    (equal (equal (plus a b) (plus a c)) (equal b c))
    (equal (equal (zero) (difference x y)) (not (lessp y x)))
    (equal (lessp (remainder x y) y) (not (zerop y)))
    (equal (remainder x 1) (zero))
    (equal (lessp (plus x y) (plus x z)) (lessp y z))
    (equal (append (append x y) z) (append x (append y z)))
    (equal (reverse (append a b)) (append (reverse b) (reverse a)))
    (equal (length (append a b)) (plus (length a) (length b)))
    (equal (member x (append a b)) (or (member x a) (member x b)))))

;; The classic driver: instantiate a theorem schema and check tautology.
(define theorem
  '(implies (and (implies x y)
                 (and (implies y z)
                      (and (implies z u) (implies u w))))
            (implies x w)))

(define (subst-theorem n)
  ;; Vary the instantiation to defeat trivial sharing.
  (apply-subst
    (list (cons 'x (list 'f n))
          (cons 'y (list 'g n))
          (cons 'z (list 'h n))
          (cons 'u '(u))
          (cons 'w '(w)))
    theorem))

(define (term-size t)
  (if (pair? t) (fold-left + 1 (map term-size (cdr t))) 1))

;; Rewrites n theorem instances to IF-normal form and fingerprints the
;; total rewritten size (the benchmark's deterministic checksum), plus the
;; tautology decisions the IF-decomposition checker can make.
(define (run-boyer n)
  (let loop ((i 0) (size 0) (taut 0))
    (if (= i n)
        (list size taut)
        (let ((rewritten (rewrite (subst-theorem i))))
          (loop (+ i 1)
                (+ size (term-size rewritten))
                (if (tautologyp rewritten '() '()) (+ taut 1) taut))))))

(list (run-boyer 12)
      (tautp '(implies p p))
      (tautp '(if p p (not p)))
      (tautp '(and p (not p)))
      (rewrite '(equal (plus (plus a b) (zero)) (zero))))
