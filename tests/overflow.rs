//! Overflow, underflow and failure-injection tests.
//!
//! §5 of the paper: overflow is an implicit capture, underflow an implicit
//! reinstatement, and a correct implementation recovers gracefully at any
//! segment size. These tests run real programs under absurdly small
//! segments, exhausted memory budgets, and pathological copy bounds.

use segstack::baselines::Strategy;
use segstack::core::{Config, StackError};
use segstack::scheme::{Engine, SchemeError};

fn tiny_cfg(segment: usize, copy_bound: usize) -> Config {
    Config::builder().segment_slots(segment).frame_bound(48).copy_bound(copy_bound).build().unwrap()
}

#[test]
fn deep_recursion_under_tiny_segments() {
    // Segments barely larger than the reserve: nearly every call overflows.
    let cfg = tiny_cfg(160, 16);
    let mut e = Engine::builder().config(cfg).max_steps(100_000_000).build().unwrap();
    let v = e.eval("(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1))))) (sum 20000)").unwrap();
    assert_eq!(v.to_string(), "200010000");
    let m = e.metrics();
    assert!(m.overflows > 1000, "only {} overflows", m.overflows);
    assert!(m.underflows >= m.overflows);
}

#[test]
fn copy_bound_one_frame_still_works() {
    // A copy bound below the frame size: every reinstatement splits down to
    // single frames (the paper's "it would be sufficient to split off a
    // single frame").
    let cfg = tiny_cfg(4096, 1);
    let mut e = Engine::builder().config(cfg).max_steps(100_000_000).build().unwrap();
    let v = e
        .eval(
            "(define k #f)
             (define pass 0)
             (define (deep n) (if (= n 0) (call/cc (lambda (c) (set! k c) 0)) (+ 1 (deep (- n 1)))))
             (define v (deep 500))
             (set! pass (+ pass 1))
             (if (< pass 3) (k 0) (list v pass))",
        )
        .unwrap();
    assert_eq!(v.to_string(), "(500 3)");
    assert!(e.metrics().splits > 100, "splits: {}", e.metrics().splits);
}

#[test]
fn ctak_under_every_tiny_config() {
    for (segment, copy_bound) in [(160, 4), (256, 16), (512, 64), (1024, 1)] {
        let cfg = tiny_cfg(segment, copy_bound);
        let mut e = Engine::builder().config(cfg).max_steps(100_000_000).build().unwrap();
        let v = e.eval(include_str!("programs/ctak.scm")).unwrap();
        assert_eq!(v.to_string(), "5", "segment={segment} copy_bound={copy_bound}");
    }
}

#[test]
fn budget_exhaustion_is_a_clean_error() {
    // A hard cap on stack memory: deep recursion must fail with
    // OutOfStackMemory, not a panic — and the engine must stay usable.
    let cfg = Config::builder()
        .segment_slots(256)
        .frame_bound(48)
        .copy_bound(32)
        .max_total_slots(4096)
        .pool_segments(0)
        .build()
        .unwrap();
    let mut e = Engine::builder().config(cfg).max_steps(100_000_000).build().unwrap();
    let err =
        e.eval("(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1))))) (sum 1000000)").unwrap_err();
    match err {
        SchemeError::Stack(StackError::OutOfStackMemory { .. }) => {}
        other => panic!("expected OutOfStackMemory, got {other}"),
    }
    // Note: the budget is consumed; shallow evaluation still works because
    // the engine reset retained the final segment.
    assert_eq!(e.eval_to_string("(+ 1 2)").unwrap(), "3");
}

#[test]
fn overflow_boundary_loop_does_not_bounce_on_segmented() {
    // Park the stack near a segment boundary, then run a call/return loop
    // across it. The segmented model allocates a fresh segment on overflow
    // and keeps running inside it — the Bartley–Jensen cache would flush
    // and refill on every iteration (E9 measures this; here we assert the
    // structural fact).
    let cfg = tiny_cfg(512, 32);
    let mut seg = Engine::builder()
        .strategy(Strategy::Segmented)
        .config(cfg.clone())
        .max_steps(100_000_000)
        .build()
        .unwrap();
    let mut cache = Engine::builder()
        .strategy(Strategy::Cache)
        .config(cfg)
        .max_steps(100_000_000)
        .build()
        .unwrap();
    let program = "
        (define (leaf x) (+ x 1))
        (define (spin depth iters)
          (if (= depth 0)
              (let loop ((i iters) (acc 0))
                (if (= i 0) acc (loop (- i 1) (leaf acc))))
              (+ 0 (spin (- depth 1) iters))))
        (spin 40 2000)";
    for e in [&mut seg, &mut cache] {
        e.eval("1").unwrap();
        e.reset_metrics();
        assert_eq!(e.eval_to_string(program).unwrap(), "2000");
    }
    let seg_ovf = seg.metrics().overflows;
    let cache_ovf = cache.metrics().overflows;
    assert!(
        seg_ovf <= 5,
        "segmented overflowed {seg_ovf} times; it should settle into one segment"
    );
    // The cache model has a fixed boundary; with the loop parked next to it
    // the comparison in E9 shows the bouncing cost. Structurally we only
    // assert it recovered correctly here.
    assert!(cache_ovf < 4000);
}

#[test]
fn engine_reset_recovers_from_stack_errors_on_all_strategies() {
    let cfg = Config::builder().segment_slots(256).frame_bound(48).copy_bound(32).build().unwrap();
    for s in Strategy::ALL {
        let mut e =
            Engine::builder().strategy(s).config(cfg.clone()).max_steps(400_000).build().unwrap();
        // Exhaust the step budget mid-recursion: the stack is left deep.
        let err = e.eval("(define (spin n) (spin (+ n 1))) (spin 0)").unwrap_err();
        assert!(err.to_string().contains("step budget"), "{s}: {err}");
        // The engine must recover to a clean stack.
        assert_eq!(e.eval_to_string("(* 6 7)").unwrap(), "42", "{s}");
    }
}

#[test]
fn very_deep_data_structures_drop_safely() {
    // A million-element list must be constructed and torn down without
    // blowing the native Rust stack (iterative Drop).
    let mut e = Engine::builder().max_steps(200_000_000).build().unwrap();
    let v = e
        .eval(
            "(define (build n acc) (if (= n 0) acc (build (- n 1) (cons n acc))))
             (length (build 1000000 '()))",
        )
        .unwrap();
    assert_eq!(v.to_string(), "1000000");
    drop(e);
}

#[test]
fn chains_of_continuations_drop_safely_on_all_strategies() {
    // Each captured continuation's saved state contains the previous one:
    // a 60000-deep ownership chain at teardown (iterative Drop).
    for s in Strategy::ALL {
        let mut e = Engine::builder().strategy(s).max_steps(200_000_000).build().unwrap();
        e.eval(
            "(define (looper n k) (if (= n 0) 'done (looper (- n 1) (call/cc (lambda (c) c)))))
             (looper 60000 #f)",
        )
        .unwrap_or_else(|err| panic!("{s}: {err}"));
        drop(e);
    }
}

#[test]
fn segment_pool_reuse_keeps_allocation_bounded() {
    let cfg = Config::builder()
        .segment_slots(512)
        .frame_bound(48)
        .copy_bound(32)
        .pool_segments(4)
        .build()
        .unwrap();
    let mut e = Engine::builder().config(cfg).max_steps(200_000_000).build().unwrap();
    // A recursion just deep enough to cross one segment boundary, repeated:
    // each cycle overflows (needs a segment) and underflows (salvages it),
    // so steady state runs entirely from the pool.
    e.eval("(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1)))))").unwrap();
    e.eval("(sum 100)").unwrap();
    e.reset_metrics();
    e.eval("(do ((i 0 (+ i 1))) ((= i 50)) (sum 100))").unwrap();
    let m = e.metrics();
    assert!(m.overflows >= 50, "each cycle must overflow (got {})", m.overflows);
    assert!(
        m.segments_reused >= 40 && m.segments_allocated <= 10,
        "steady state should run from the pool: {} fresh vs {} reused",
        m.segments_allocated,
        m.segments_reused
    );
}
