//! A read-eval-print loop over any control-stack strategy.
//!
//! Run with `cargo run --example repl [-- strategy]` where strategy is one
//! of segmented (default), heap, copy, cache, hybrid. Incomplete
//! expressions continue on the next line. Commands:
//!
//! * `,metrics` — control-stack operation counters
//! * `,reset`   — zero the counters
//! * `,stats`   — structural stack snapshot
//! * `,dis`     — disassemble the last compiled chunk
//! * `,quit`    — exit

use std::io::{BufRead, Write};

use segstack::baselines::Strategy;
use segstack::scheme::Engine;

/// Counts unbalanced parentheses, ignoring strings, comments and
/// character literals, so multi-line expressions can be continued.
fn paren_balance(src: &str) -> i32 {
    let mut depth = 0i32;
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            ';' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '"' => {
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => {
                            chars.next();
                        }
                        '"' => break,
                        _ => {}
                    }
                }
            }
            '#' if chars.peek() == Some(&'\\') => {
                chars.next();
                chars.next(); // the literal character, even if a paren
            }
            _ => {}
        }
    }
    depth
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let strategy: Strategy =
        std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(Strategy::Segmented);
    let mut engine = Engine::with_strategy(strategy)?;
    println!("segstack Scheme — strategy: {strategy}. ,metrics ,stats ,dis [name] ,quit");

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let mut pending = String::new();
    loop {
        print!("{}", if pending.is_empty() { "> " } else { "  " });
        std::io::stdout().flush()?;
        let Some(line) = lines.next() else { break };
        let line = line?;
        if pending.is_empty() {
            match line.trim() {
                "" => continue,
                ",quit" | ",q" => break,
                ",metrics" => {
                    println!("{}", engine.metrics());
                    continue;
                }
                ",reset" => {
                    engine.reset_metrics();
                    continue;
                }
                ",stats" => {
                    println!("{:?}", engine.stack_stats());
                    continue;
                }
                ",dis" => {
                    if engine.chunk_count() > 0 {
                        println!("{}", engine.disassemble_last());
                    } else {
                        println!("nothing compiled yet");
                    }
                    continue;
                }
                cmd if cmd.starts_with(",dis ") => {
                    let name = cmd[5..].trim();
                    match engine.disassemble_global(name) {
                        Some(listing) => println!("{listing}"),
                        None => println!("{name} is not bound to a compiled procedure"),
                    }
                    continue;
                }
                _ => {}
            }
        }
        pending.push_str(&line);
        pending.push('\n');
        if paren_balance(&pending) > 0 {
            continue; // read more lines
        }
        let src = std::mem::take(&mut pending);
        match engine.eval(&src) {
            Ok(v) => {
                let out = engine.take_output();
                if !out.is_empty() {
                    print!("{out}");
                    if !out.ends_with('\n') {
                        println!();
                    }
                }
                println!("{v}");
            }
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::paren_balance;

    #[test]
    fn balance_counts_ignore_strings_comments_chars() {
        assert_eq!(paren_balance("(+ 1 2)"), 0);
        assert_eq!(paren_balance("(define (f x)"), 2);
        assert_eq!(paren_balance("\"(((\""), 0);
        assert_eq!(paren_balance("; (((\n()"), 0);
        assert_eq!(paren_balance("#\\( "), 0);
        assert_eq!(paren_balance("(display \"a)b\")"), 0);
        assert_eq!(paren_balance("[( ])"), 0);
    }
}
