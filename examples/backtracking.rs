//! Nonblind backtracking with `amb`: the n-queens puzzle.
//!
//! `choose` captures a continuation at each choice point; `amb-require`
//! invokes the most recent failure continuation, unwinding to the last
//! choice and resuming it with the next alternative — Sussman & Steele's
//! nonblind backtracking, reference [16] of the paper.
//!
//! Run with `cargo run --example backtracking`.

use segstack::baselines::Strategy;
use segstack::control::Control;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kit = Control::new(Strategy::Segmented)?;

    println!("== n-queens solution counts ==");
    for n in 4..=8 {
        let count = kit.queens_count(n)?;
        println!("{n}-queens: {count} solutions");
    }

    println!("\n== one 6-queens board ==");
    let board = kit.eval("(car (queens 6))")?;
    let rows = board.list_to_vec()?;
    for r in 0..rows.len() {
        let row: Vec<&str> =
            rows.iter().map(|q| if q.to_string() == r.to_string() { "Q" } else { "." }).collect();
        println!("{}", row.join(" "));
    }

    println!("\n== pythagorean triples via choose ==");
    let v = kit.eval(
        "(amb-collect (lambda ()
           (let ((a (choose (iota 20))) (b (choose (iota 20))) (c (choose (iota 20))))
             (amb-require (and (< 0 a) (< a b) (< b c)))
             (amb-require (= (+ (* a a) (* b b)) (* c c)))
             (list a b c))))",
    )?;
    println!("{v}");

    let m = kit.metrics();
    println!("\ncontrol-stack work: captures={}, reinstatements={}", m.captures, m.reinstatements);
    Ok(())
}
