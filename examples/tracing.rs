//! Observability end to end: ring-buffer event tracing, histogram
//! readouts, and a Perfetto-loadable timeline.
//!
//! Three layers, one sink:
//!
//! 1. an engine records every capture / reinstate / overflow / underflow
//!    into a [`RingSink`] (the default `NoopSink` build records nothing
//!    and costs nothing — see experiment E18);
//! 2. the running Scheme program reads its own per-kind histograms with
//!    the `(trace-stats)` primitive;
//! 3. a traced serve runtime drains one timeline per worker, rendered as
//!    Chrome trace-event JSON for https://ui.perfetto.dev.
//!
//! Run with `cargo run --example tracing`.

use std::cell::RefCell;
use std::rc::Rc;

use segstack::baselines::Strategy;
use segstack::core::trace::{chrome_trace_json, flame_summary, validate_chrome_trace, RingSink};
use segstack::scheme::Engine;
use segstack::serve::{Request, Runtime, RuntimeConfig};

fn main() {
    // -- 1. an engine recording into a ring ------------------------------
    let sink = Rc::new(RefCell::new(RingSink::new()));
    let mut engine = Engine::builder()
        .strategy(Strategy::Segmented)
        .trace_sink(sink.clone())
        .build()
        .expect("engine construction");

    let program = "(define (spin n)
                     (if (= n 0)
                         'done
                         (call/cc (lambda (k) (k (spin (- n 1)))))))
                   (spin 2000)";
    engine.eval(program).expect("traced program");
    println!("== ring aggregates after 2000 capture/reinstate cycles ==");
    let ring = sink.borrow();
    println!("events recorded: {} (dropped {})", ring.total_recorded(), ring.dropped());
    for (kind, s) in ring.summaries() {
        println!(
            "{:<16} count={:<6} p50={:<6} p99={:<6} max={}",
            kind.name(),
            s.count,
            s.p50,
            s.p99,
            s.max
        );
    }
    drop(ring);

    // -- 2. the program reads its own trace: (trace-stats) ---------------
    let alist = engine.eval("(assq 'capture (trace-stats))").expect("trace-stats primitive");
    println!("\n== (assq 'capture (trace-stats)) from inside Scheme ==");
    println!("{alist}    ; (kind count p50 p90 p99 max)");

    // -- 3. a traced serve runtime, exported for Perfetto ----------------
    let rt = Runtime::start(RuntimeConfig::with_workers(2).quantum(2_000).tracing(true));
    for i in 0..6 {
        let src = format!(
            "(let fib ((n {})) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
            14 + i % 3
        );
        rt.submit(Request::new(src)).expect("submit").wait().result.expect("job result");
    }
    let (snapshot, traces) = rt.shutdown_traced();
    println!("\n== serve snapshot (latency histograms ride along) ==");
    print!("{snapshot}");

    let doc = chrome_trace_json(&traces);
    let stats = validate_chrome_trace(&doc).expect("exported trace validates");
    let path = std::env::temp_dir().join("segstack-trace.json");
    std::fs::write(&path, &doc).expect("write trace file");
    println!(
        "\nwrote {} — {} events ({} spans, {} job spans) on {} track(s)",
        path.display(),
        stats.events,
        stats.spans,
        stats.async_spans,
        stats.tracks
    );
    println!("open it in https://ui.perfetto.dev or chrome://tracing\n");
    println!("== flame summary ==\n{}", flame_summary(&traces));
}
