//! A metacircular Scheme evaluator running on segstack — two interpreter
//! levels above the segmented control stack.
//!
//! Run with `cargo run --example metacircular [-- strategy]`.

use segstack::baselines::Strategy;
use segstack::scheme::Engine;

const META: &str = include_str!("../tests/programs/meta.scm");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let strategy: Strategy =
        std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(Strategy::Segmented);
    let mut engine = Engine::builder().strategy(strategy).build()?;

    println!("== loading the metacircular evaluator (strategy: {strategy}) ==");
    let v = engine.eval(META)?;
    println!("self-test: {v}");

    println!("\n== meta-level programs ==");
    for (label, src) in [
        ("arithmetic", "(meta-eval '(* (+ 2 3) 4) (base-env))"),
        ("closures", "(meta-eval '(((lambda (a) (lambda (b) (+ a b))) 30) 12) (base-env))"),
        (
            "recursion (fib 16 via self-application)",
            "(meta-eval
               '(((lambda (f) (lambda (n) ((f f) n)))
                  (lambda (self)
                    (lambda (n)
                      (if (< n 2) n (+ ((self self) (- n 1)) ((self self) (- n 2)))))))
                 16)
               (base-env))",
        ),
        ("lists", "(meta-eval '(let ((xs (list 1 2 3))) (cons (car xs) (cdr xs))) (base-env))"),
    ] {
        let v = engine.eval(src)?;
        println!("{label:44} => {v}");
    }

    println!("\n== host continuations reach through the meta level ==");
    let v = engine.eval(
        "(define k #f)
         (define passes 0)
         (define env (cons (cons 'snap (lambda (x) (call/cc (lambda (c) (set! k c) x))))
                           (base-env)))
         (define r (meta-eval '(+ 1000 (snap 1)) env))
         (set! passes (+ passes 1))
         (if (< passes 3) (k (* passes 111)) (list r passes))",
    )?;
    println!("re-entered the meta-level computation twice: {v}");

    let m = engine.metrics();
    println!(
        "\ncontrol-stack work underneath: {} calls, {} captures, {} overflows",
        m.calls, m.captures, m.overflows
    );
    Ok(())
}
