//! Quickstart: the segmented stack under a Scheme engine.
//!
//! Run with `cargo run --example quickstart`.

use segstack::baselines::Strategy;
use segstack::scheme::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Scheme engine whose activation records live on the paper's
    // segmented control stack.
    let mut engine = Engine::with_strategy(Strategy::Segmented)?;

    println!("== ordinary computation ==");
    let v = engine.eval(
        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
         (fib 25)",
    )?;
    println!("(fib 25)              => {v}");

    println!("\n== first-class continuations ==");
    // Escaping: the captured continuation aborts the addition.
    let v = engine.eval("(+ 1 (call/cc (lambda (k) (* 1000 (k 41)))))")?;
    println!("escape                => {v}");

    // Multi-shot: re-entering a continuation restarts the computation from
    // the capture point — the case that rules out a naive stack.
    engine.eval("(define saved #f)")?;
    let v = engine.eval("(* 2 (call/cc (lambda (k) (set! saved k) 10)))")?;
    println!("first pass            => {v}");
    let v = engine.eval("(saved 100)")?;
    println!("re-entry (saved 100)  => {v}");
    let v = engine.eval("(saved 1000)")?;
    println!("re-entry (saved 1000) => {v}");

    println!("\n== deep recursion: overflow handled as implicit capture ==");
    engine.reset_metrics();
    let v = engine.eval(
        "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1)))))
         (sum 200000)",
    )?;
    let m = engine.metrics().clone();
    println!("(sum 200000)          => {v}");
    println!(
        "stack overflows: {} (each sealed a segment); underflows: {} (each reinstated \
         a bounded piece); slots copied: {}",
        m.overflows, m.underflows, m.slots_copied
    );

    println!("\n== the looper: tail-recursive capture in constant space ==");
    engine.reset_metrics();
    engine.eval(
        "(define (looper n)
           (if (= n 0) 'done (begin (call/cc (lambda (k) k)) (looper (- n 1)))))
         (looper 100000)",
    )?;
    let segs = engine.metrics().segments_allocated;
    let st = engine.stack_stats();
    println!(
        "100000 captures, {segs} segments allocated, chain length now {} - no growth",
        st.chain_records
    );

    Ok(())
}
