//! The serve runtime: many Scheme jobs, few workers, engine preemption.
//!
//! Engines (§4–§5 of the paper, via Dybvig & Hieb's "Engines from
//! Continuations") turn the segmented stack's cheap continuation capture
//! into preemptive multitasking: the timer interrupt fires mid-program,
//! the rest of the computation is captured as a continuation, and the
//! scheduler decides who runs next. `segstack-serve` scales that to a
//! pool of OS threads — each worker owns its own engines, jobs share
//! nothing, and a divergent program is just another job that runs out of
//! budget.
//!
//! Run with `cargo run --example serve`.

use std::time::Duration;

use segstack::baselines::Strategy;
use segstack::serve::{JobError, Request, Runtime, RuntimeConfig};

fn main() {
    let rt = Runtime::start(RuntimeConfig::with_workers(2).quantum(2_000).queue_depth(64));

    println!("== a mixed batch across strategies ==");
    let batch = [
        ("fib 20", "(let fib ((n 20)) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"),
        ("reverse via fold", "(fold-left (lambda (acc x) (cons x acc)) '() (iota 10))"),
        ("call/cc escape", "(* 7 (call/cc (lambda (k) (k 6) 999)))"),
    ];
    let handles: Vec<_> = batch
        .iter()
        .zip([Strategy::Segmented, Strategy::Heap, Strategy::Copy])
        .map(|((name, src), strategy)| {
            (*name, rt.submit(Request::new(*src).strategy(strategy)).unwrap())
        })
        .collect();
    for (name, h) in handles {
        let o = h.wait();
        println!(
            "{name:<18} -> {:<28} ({} quanta, {} ticks, {:.1}ms)",
            o.result.unwrap(),
            o.quanta,
            o.ticks,
            o.latency.as_secs_f64() * 1e3
        );
    }

    println!("\n== a divergent job meets its deadline ==");
    let doomed = rt
        .submit(Request::new("(let loop () (loop))").deadline(Duration::from_millis(30)))
        .unwrap();
    let o = doomed.wait();
    assert_eq!(o.result.unwrap_err(), JobError::DeadlineExceeded);
    println!(
        "cancelled mid-computation after {} quanta / {} ticks; the worker survives:",
        o.quanta, o.ticks
    );
    let alive = rt.submit(Request::new("(+ 20 22)")).unwrap().wait();
    println!("follow-up job on the same pool -> {}", alive.result.unwrap());

    println!("\n== a fuel budget caps total ticks ==");
    let capped = rt.submit(Request::new("(let loop () (loop))").fuel(10_000)).unwrap();
    let o = capped.wait();
    assert_eq!(o.result.unwrap_err(), JobError::FuelExhausted);
    println!("fuel-exhausted after {} ticks (budget 10000)", o.ticks);

    println!("\n== final runtime metrics ==");
    let snapshot = rt.shutdown();
    print!("{snapshot}");
    println!("json: {}", snapshot.to_json());
}
