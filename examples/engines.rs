//! Engines: timed preemption from continuations and the timer interrupt.
//!
//! An engine runs a computation for a bounded number of ticks; if the fuel
//! runs out, the computation's continuation is captured and packaged as a
//! fresh engine. This example time-slices three compute-bound tasks with a
//! round-robin scheduler — cooperative multitasking with *no* cooperation
//! from the tasks.
//!
//! Run with `cargo run --example engines`.

use segstack::baselines::Strategy;
use segstack::control::Control;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kit = Control::new(Strategy::Segmented)?;

    println!("== one engine, run to completion in quanta ==");
    let v = kit.eval(
        "(engine-run-to-completion
           (make-engine (lambda ()
             (let loop ((i 5000)) (if (= i 0) 'finished (loop (- i 1))))))
           250)",
    )?;
    println!("(value . quanta-used) = {v}");

    println!("\n== three tasks, round-robin, quantum 100 ticks ==");
    let order = kit.round_robin_countdowns(3, 2000, 100)?;
    println!("equal tasks finish in submission order: {order:?}");

    // Unequal workloads: the shortest finishes first regardless of order.
    let v = kit.eval(
        "(round-robin
           (list (make-engine (lambda () (let loop ((i 3000)) (if (= i 0) 'long (loop (- i 1))))))
                 (make-engine (lambda () (let loop ((i 100)) (if (= i 0) 'short (loop (- i 1))))))
                 (make-engine (lambda () (let loop ((i 1000)) (if (= i 0) 'medium (loop (- i 1)))))))
           100)",
    )?;
    println!("unequal tasks finish shortest-first: {v}");

    println!("\n== nested computation is preempted transparently ==");
    let v = kit.eval(
        "(engine-run-to-completion
           (make-engine (lambda ()
             (define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
             (fib 17)))
           500)",
    )?;
    println!("(fib 17) under a 500-tick quantum = {v}");

    println!("\n== cooperative threads on top of engines ==");
    // The paper's closing direction: concurrency from continuations. Each
    // thread is an engine; preemption is continuation capture at a timer
    // interrupt; channels communicate between threads.
    kit.eval("(define ch (make-channel))")?;
    let results = kit.run_threads(
        &[
            "(lambda ()
               (let loop ((got '()))
                 (let ((v (channel-recv! ch)))
                   (if (eq? v 'eof) (reverse got) (loop (cons v got))))))",
            "(lambda ()
               (for-each (lambda (x) (channel-send! ch (* x x)) (thread-yield))
                         '(1 2 3 4))
               (channel-send! ch 'eof)
               'producer-done)",
        ],
        200,
    )?;
    for (tid, value) in &results {
        println!("thread {tid} finished with {value}");
    }

    let m = kit.metrics();
    println!(
        "\ncontrol-stack work: captures={}, reinstatements={}, splits={}",
        m.captures, m.reinstatements, m.splits
    );
    Ok(())
}
