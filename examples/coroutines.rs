//! Coroutines from continuations: same-fringe and producer/consumer.
//!
//! The same-fringe problem — do two trees hold the same leaves in the same
//! order? — is the classic demonstration of why coroutines need first-class
//! control: each tree walk suspends mid-recursion, with its whole stack
//! captured, every time it yields a leaf.
//!
//! Run with `cargo run --example coroutines`.

use segstack::baselines::Strategy;
use segstack::control::Control;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kit = Control::new(Strategy::Segmented)?;

    println!("== same fringe ==");
    for (t1, t2) in [
        ("'((1 2) (3 (4 5)))", "'(1 (2 3) ((4) 5))"),
        ("'((1 2) (3 (4 5)))", "'(1 (2 3) ((4) 6))"),
        ("'(1 2 3)", "'(1 2 3 4)"),
    ] {
        let same = kit.same_fringe(t1, t2)?;
        println!("{t1:28} vs {t2:24} => {same}");
    }

    println!("\n== producer/consumer ping-pong ==");
    let rounds = 10_000;
    let v = kit.coroutine_pingpong(rounds)?;
    println!("{rounds} control transfers, final counter = {v}");
    let m = kit.metrics();
    println!(
        "captures: {}, reinstatements: {}, slots copied: {}",
        m.captures, m.reinstatements, m.slots_copied
    );

    println!("\n== infinite generators, lazily consumed ==");
    let squares = kit.eval(
        "(generator-take
           (generator-map (lambda (x) (* x x))
             (generator-filter odd? (integers-from 1)))
           8)",
    )?;
    println!("first 8 odd squares: {squares}");

    Ok(())
}
